// Command dagrta analyzes one heterogeneous DAG task (JSON produced by
// cmd/daggen or by hand): it prints vol/len, the homogeneous bound Rhom
// (Eq. 1), the transformed task's heterogeneous bound Rhet with its Theorem
// 1 scenario, and optionally a simulated schedule and the exact minimum
// makespan.
//
// Usage:
//
//	dagrta -in task.json -m 4 [-deadline 120] [-sim] [-gantt] [-exact] [-check]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dag"
	"repro/internal/exact"
	"repro/internal/rta"
	"repro/internal/sched"
	"repro/internal/transform"
)

func main() {
	var (
		in       = flag.String("in", "-", "input JSON file ('-' = stdin)")
		m        = flag.Int("m", 4, "number of host cores")
		deadline = flag.Int64("deadline", 0, "relative deadline D for a schedulability verdict (0 = skip)")
		doSim    = flag.Bool("sim", false, "simulate τ and τ' under the breadth-first scheduler")
		doGantt  = flag.Bool("gantt", false, "print ASCII Gantt charts of the simulations (implies -sim)")
		doExact  = flag.Bool("exact", false, "compute the exact minimum makespan (n ≤ 64)")
		doCheck  = flag.Bool("check", false, "verify the transformation invariants (Algorithm 1 post-conditions)")
		budget   = flag.Int64("budget", 0, "exact-solver expansion budget (0 = default)")
		svgOut   = flag.String("svg", "", "write an SVG Gantt chart of the transformed task's schedule to this file")
	)
	flag.Parse()

	g, err := readGraph(*in)
	if err != nil {
		fatal(err)
	}
	if removed, err := g.TransitiveReduction(); err != nil {
		fatal(err)
	} else if removed > 0 {
		fmt.Printf("note: removed %d redundant edge(s) before analysis\n", removed)
	}

	fmt.Printf("task: n=%d edges=%d vol=%d len=%d\n", g.NumNodes(), g.NumEdges(), g.Volume(), g.CriticalPathLength())
	vOff, hasOff := g.OffloadNode()
	if hasOff {
		fmt.Printf("offload: node %s with COff=%d (%.1f%% of volume)\n",
			g.Name(vOff), g.WCET(vOff), 100*float64(g.WCET(vOff))/float64(g.Volume()))
	} else {
		fmt.Println("offload: none (homogeneous task)")
	}

	fmt.Printf("Rhom(τ)  on m=%d: %.2f\n", *m, rta.Rhom(g, *m))
	if hasOff {
		a, err := rta.Analyze(g, *m)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("naive    on m=%d: %.2f (UNSAFE, shown for comparison)\n", *m, a.Naive)
		fmt.Printf("Rhet(τ') on m=%d: %.2f (%s; len'=%d lenPar=%d volPar=%d)\n",
			*m, a.Het.R, a.Het.Scenario, a.Het.LenPrime, a.Het.LenPar, a.Het.VolPar)
		if *doCheck {
			if err := transform.Check(a.Transform); err != nil {
				fatal(err)
			}
			fmt.Println("transform check: OK")
		}
		if *deadline > 0 {
			verdict := "NOT schedulable"
			if a.Het.R <= float64(*deadline) {
				verdict = "schedulable"
			}
			fmt.Printf("deadline %d: %s under Rhet\n", *deadline, verdict)
		}
		if *doSim || *doGantt {
			simulate(g, a, *m, *doGantt)
		}
		if *svgOut != "" {
			r, err := sched.Simulate(a.Transform.Transformed, sched.Hetero(*m), sched.BreadthFirst())
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*svgOut)
			if err != nil {
				fatal(err)
			}
			if err := r.WriteSVG(f, a.Transform.Transformed); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *svgOut)
		}
	} else if *deadline > 0 {
		verdict := "NOT schedulable"
		if rta.Rhom(g, *m) <= float64(*deadline) {
			verdict = "schedulable"
		}
		fmt.Printf("deadline %d: %s under Rhom\n", *deadline, verdict)
	}

	if *doExact {
		p := sched.Hetero(*m)
		if !hasOff {
			p = sched.Homogeneous(*m)
		}
		r, err := exact.MinMakespan(g, p, exact.Options{MaxExpansions: *budget})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("exact min makespan: %d (%s, %d expansions, lower bound %d)\n",
			r.Makespan, r.Status, r.Expansions, r.LowerBound)
	}
}

func simulate(g *dag.Graph, a *rta.Analysis, m int, gantt bool) {
	orig, err := sched.Simulate(g, sched.Hetero(m), sched.BreadthFirst())
	if err != nil {
		fatal(err)
	}
	trans, err := sched.Simulate(a.Transform.Transformed, sched.Hetero(m), sched.BreadthFirst())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simulated makespan (breadth-first): τ=%d τ'=%d\n", orig.Makespan, trans.Makespan)
	if gantt {
		fmt.Println("τ schedule:")
		fmt.Print(orig.Gantt(g, 72))
		fmt.Println("τ' schedule:")
		fmt.Print(trans.Gantt(a.Transform.Transformed, 72))
	}
}

func readGraph(path string) (*dag.Graph, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	g := dag.New()
	if err := json.Unmarshal(data, g); err != nil {
		return nil, err
	}
	return g, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dagrta:", err)
	os.Exit(1)
}
