package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	hetrta "repro"
)

// fig1JSON is the paper's running example (Figure 1(a)), normalized:
// Rhom = 13, naive = 11, Rhet = 12 on m=2, exact optimum 9.
const fig1JSON = `{
  "nodes": [
    {"name": "v1", "wcet": 2}, {"name": "v2", "wcet": 4},
    {"name": "v3", "wcet": 5}, {"name": "v4", "wcet": 2},
    {"name": "v5", "wcet": 1}, {"name": "vOff", "wcet": 4, "kind": "offload"},
    {"name": "sink", "wcet": 0}
  ],
  "edges": [[0,1],[0,2],[0,3],[1,4],[2,4],[3,5],[4,6],[5,6]]
}`

func writeFig1(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig1.json")
	if err := os.WriteFile(path, []byte(fig1JSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	path := writeFig1(t)
	var out, errb bytes.Buffer
	code := run([]string{"-in", path, "-m", "2", "-sim", "-exact", "-check", "-deadline", "12"},
		strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"vol=18 len=8",
		"Rhom(τ) : 13.00",
		"Rhet(τ'): 12.00",
		"scenario 1",
		"naive   : 11.00",
		"UNSAFE",
		"deadline 12: schedulable under rhet",
		"simulated makespan",
		"exact min makespan: 9 (optimal",
		"transform check: OK",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q; got:\n%s", want, s)
		}
	}
}

func TestRunJSONReport(t *testing.T) {
	path := writeFig1(t)
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-m", "2", "-exact", path}, strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	// The schema is stable: always an array, even for a single input.
	var reps []hetrta.Report
	if err := json.Unmarshal(out.Bytes(), &reps); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(reps) != 1 {
		t.Fatalf("got %d reports, want 1", len(reps))
	}
	rep := reps[0]
	if v, ok := rep.BoundValue("rhet"); !ok || v != 12 {
		t.Errorf("rhet = %v (ok=%v), want 12", v, ok)
	}
	if rep.Exact == nil || rep.Exact.Makespan != 9 {
		t.Errorf("exact = %+v", rep.Exact)
	}
}

func TestRunBatchOrderAndStdin(t *testing.T) {
	path := writeFig1(t)
	var out, errb bytes.Buffer
	code := run([]string{"-m", "2", "-parallel", "2", path, path, path},
		strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if n := strings.Count(out.String(), "== "); n != 3 {
		t.Errorf("expected 3 per-file headers, got %d:\n%s", n, out.String())
	}

	// Reading from stdin with no inputs.
	out.Reset()
	errb.Reset()
	code = run([]string{"-m", "2"}, strings.NewReader(fig1JSON), &out, &errb)
	if code != 0 {
		t.Fatalf("stdin run: exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Rhom(τ) : 13.00") {
		t.Errorf("stdin output wrong:\n%s", out.String())
	}
}

func TestRunFlagAndInputErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-badflag"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-in", "/nonexistent.json"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	// A malformed graph must fail per-item with exit 1.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"nodes": [{"wcet": 1, "kind": "alien"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{bad}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Errorf("bad graph: exit %d, want 1 (stderr %q)", code, errb.String())
	}
}
