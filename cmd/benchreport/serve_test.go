package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goodServeDoc builds a passing servereport/v1 document.
func goodServeDoc() map[string]any {
	class := func(count, errors, hit, miss int, p50 int64) map[string]any {
		return map[string]any{
			"count": count, "errors": errors, "hit": hit, "miss": miss, "shared": 0,
			"latency": map[string]any{"p50_ns": p50, "p99_ns": p50 * 3},
		}
	}
	return map[string]any{
		"schema": "servereport/v1", "requests": 100, "throughput_rps": 500.0,
		"classes": map[string]any{
			"repeat": class(60, 0, 55, 5, 200_000),
			"iso":    class(15, 0, 14, 1, 250_000),
			"cold":   class(15, 0, 0, 15, 900_000),
			"delta":  class(10, 0, 3, 7, 1_200_000),
		},
		"totals": class(100, 0, 72, 28, 400_000),
	}
}

func writeServeDoc(t *testing.T, dir, name string, doc map[string]any) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeGatePasses: a healthy run validates, and -out receives a copy.
func TestServeGatePasses(t *testing.T) {
	dir := t.TempDir()
	in := writeServeDoc(t, dir, "run.json", goodServeDoc())
	out := filepath.Join(dir, "BENCH_SERVE_1.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-serve", "-input", in, "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("validated report not copied: %v", err)
	}
	if !strings.Contains(stdout.String(), "serve report ok") {
		t.Fatalf("stdout = %q", stdout.String())
	}
}

// TestServeGateStructuralFailures: each deterministic violation fails the
// gate with a diagnostic naming it.
func TestServeGateStructuralFailures(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(doc map[string]any)
		want   string
	}{
		{"bad schema", func(d map[string]any) { d["schema"] = "benchreport/v1" }, "schema"},
		{"transport errors", func(d map[string]any) {
			d["totals"].(map[string]any)["errors"] = 2
			d["classes"].(map[string]any)["cold"].(map[string]any)["errors"] = 2
		}, "failed requests"},
		{"no hits on repeat", func(d map[string]any) {
			d["classes"].(map[string]any)["repeat"].(map[string]any)["hit"] = 0
		}, "no cache hits"},
		{"count mismatch", func(d map[string]any) { d["requests"] = 999 }, "configured 999"},
		{"empty class", func(d map[string]any) {
			d["classes"].(map[string]any)["delta"].(map[string]any)["count"] = 0
		}, `"delta"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := goodServeDoc()
			tc.mutate(doc)
			in := writeServeDoc(t, t.TempDir(), "run.json", doc)
			var stdout, stderr bytes.Buffer
			if code := run([]string{"-serve", "-input", in}, &stdout, &stderr); code != 1 {
				t.Fatalf("exit %d, want 1: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Fatalf("stderr %q does not mention %q", stderr.String(), tc.want)
			}
		})
	}
}

// TestServeGateLatencyWarnOnly: a 100× latency regression against the
// baseline warns but exits 0 — wall-clock noise must not fail CI.
func TestServeGateLatencyWarnOnly(t *testing.T) {
	dir := t.TempDir()
	fast := goodServeDoc()
	writeServeDoc(t, dir, "BENCH_SERVE_1.json", fast)

	slow := goodServeDoc()
	for _, cs := range slow["classes"].(map[string]any) {
		lat := cs.(map[string]any)["latency"].(map[string]any)
		lat["p50_ns"] = int64(100) * lat["p50_ns"].(int64)
		lat["p99_ns"] = int64(100) * lat["p99_ns"].(int64)
	}
	in := writeServeDoc(t, dir, "run.json", slow)
	out := filepath.Join(dir, "BENCH_SERVE_2.json") // auto-baselines to _1
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-serve", "-input", in, "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("latency regression failed the gate (exit %d): %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "informational only") {
		t.Fatalf("no latency warning printed: %q", stdout.String())
	}
}

// TestServeGateBaselineClassDisappearing: losing a traffic class the
// baseline covered IS structural and fails.
func TestServeGateBaselineClassDisappearing(t *testing.T) {
	dir := t.TempDir()
	writeServeDoc(t, dir, "BENCH_SERVE_1.json", goodServeDoc())

	cur := goodServeDoc()
	classes := cur["classes"].(map[string]any)
	cur["requests"] = 90
	cur["totals"].(map[string]any)["count"] = 90
	delete(classes, "delta")
	in := writeServeDoc(t, dir, "run.json", cur)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-serve", "-input", in, "-out", filepath.Join(dir, "BENCH_SERVE_2.json")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "missing from this run") {
		t.Fatalf("stderr = %q", stderr.String())
	}
}

// TestServeGateRequiresInput: -serve without -input is a usage error.
func TestServeGateRequiresInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-serve"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
