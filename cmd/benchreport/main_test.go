package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig6                             	       2	  58965415 ns/op	86468300 B/op	  857633 allocs/op
BenchmarkAnalyze                          	       2	    136220 ns/op	  156312 B/op	    1053 allocs/op
BenchmarkAblationPolicies/breadth-first                      	       2	     36598 ns/op	   23192 B/op	     354 allocs/op
PASS
ok  	repro	1.235s
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(benches), benches)
	}
	want := Benchmark{Name: "BenchmarkFig6", Iterations: 2, NsPerOp: 58965415,
		BytesPerOp: 86468300, AllocsPerOp: 857633}
	if benches[0] != want {
		t.Errorf("benches[0] = %+v, want %+v", benches[0], want)
	}
	if benches[2].Name != "BenchmarkAblationPolicies/breadth-first" {
		t.Errorf("sub-benchmark name = %q (GOMAXPROCS suffix must be stripped)", benches[2].Name)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	baseline := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: 100},
		{Name: "BenchmarkGone", NsPerOp: 1, AllocsPerOp: 1},
	}
	current := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 120, AllocsPerOp: 150}, // 1.5x: fine
		{Name: "BenchmarkB", NsPerOp: 90, AllocsPerOp: 250},  // 2.5x: regressed
		{Name: "BenchmarkNew", NsPerOp: 5, AllocsPerOp: 5},   // no baseline: skipped
	}
	deltas, missing, regressed := compare(baseline, current, 2.0)
	if !regressed {
		t.Fatal("2.5x allocs growth not flagged as regression")
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2 (only common benchmarks): %+v", len(deltas), deltas)
	}
	if deltas[0].Name != "BenchmarkA" || deltas[0].Regressed {
		t.Errorf("BenchmarkA delta wrong: %+v", deltas[0])
	}
	if !deltas[1].Regressed || deltas[1].AllocsRatio != 2.5 {
		t.Errorf("BenchmarkB delta wrong: %+v", deltas[1])
	}
	if len(missing) != 1 || missing[0] != "BenchmarkGone" {
		t.Errorf("missing = %v, want [BenchmarkGone]: a vanished benchmark must be reported", missing)
	}
}

func TestCompareZeroAllocBaseline(t *testing.T) {
	baseline := []Benchmark{{Name: "BenchmarkCacheHit", NsPerOp: 10, AllocsPerOp: 0}}
	// Even a single allocation against a zero-alloc baseline must fail,
	// regardless of the ratio threshold.
	deltas, _, regressed := compare(baseline,
		[]Benchmark{{Name: "BenchmarkCacheHit", NsPerOp: 10, AllocsPerOp: 1}}, 2.0)
	if !regressed || !deltas[0].Regressed {
		t.Fatalf("0 -> 1 allocs/op not flagged: %+v", deltas)
	}
	// 0 -> 0 is clean.
	deltas, _, regressed = compare(baseline,
		[]Benchmark{{Name: "BenchmarkCacheHit", NsPerOp: 12, AllocsPerOp: 0}}, 2.0)
	if regressed || deltas[0].Regressed || deltas[0].AllocsRatio != 1 {
		t.Fatalf("0 -> 0 allocs/op flagged: %+v", deltas)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}

	// First report becomes the baseline.
	out1 := filepath.Join(dir, "BENCH_1.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-input", in, "-out", out1}, &stdout, &stderr); code != 0 {
		t.Fatalf("first run exit %d: %s", code, stderr.String())
	}

	// Second report auto-discovers BENCH_1.json; identical numbers pass.
	out2 := filepath.Join(dir, "BENCH_2.json")
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-input", in, "-out", out2}, &stdout, &stderr); code != 0 {
		t.Fatalf("second run exit %d: %s", code, stderr.String())
	}
	rep, err := readReport(out2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineFile != "BENCH_1.json" {
		t.Errorf("baseline = %q, want auto-discovered BENCH_1.json", rep.BaselineFile)
	}
	if len(rep.Deltas) != 3 {
		t.Errorf("got %d deltas, want 3", len(rep.Deltas))
	}
	for _, d := range rep.Deltas {
		if d.NsRatio != 1 || d.AllocsRatio != 1 || d.Regressed {
			t.Errorf("identical runs should have unit ratios: %+v", d)
		}
	}
	if !strings.Contains(stdout.String(), "BenchmarkFig6") {
		t.Errorf("summary missing benchmark name:\n%s", stdout.String())
	}

	// A 3x allocs/op growth against the committed baseline must fail.
	worse := strings.ReplaceAll(sampleOutput, "1053 allocs/op", "4000 allocs/op")
	if err := os.WriteFile(in, []byte(worse), 0o644); err != nil {
		t.Fatal(err)
	}
	out3 := filepath.Join(dir, "BENCH_3.json")
	stderr.Reset()
	if code := run([]string{"-input", in, "-out", out3}, &stdout, &stderr); code != 1 {
		t.Fatalf("regressed run exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "regression") {
		t.Errorf("stderr missing regression message: %s", stderr.String())
	}

	// The emitted JSON is a valid benchreport/v1 document.
	data, err := os.ReadFile(out3)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["schema"] != "benchreport/v1" {
		t.Errorf("schema = %v", doc["schema"])
	}
}

func TestPreviousReport(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_0.json", "BENCH_2.json", "other.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got := previousReport(filepath.Join(dir, "BENCH_3.json")); filepath.Base(got) != "BENCH_2.json" {
		t.Errorf("previousReport(BENCH_3) = %q, want BENCH_2.json", got)
	}
	if got := previousReport(filepath.Join(dir, "BENCH_2.json")); filepath.Base(got) != "BENCH_0.json" {
		t.Errorf("previousReport(BENCH_2) = %q, want BENCH_0.json", got)
	}
	if got := previousReport(filepath.Join(dir, "BENCH_0.json")); got != "" {
		t.Errorf("previousReport(BENCH_0) = %q, want none", got)
	}
	if got := previousReport(filepath.Join(dir, "custom.json")); got != "" {
		t.Errorf("previousReport(custom) = %q, want none", got)
	}
}
