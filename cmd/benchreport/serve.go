package main

// -serve mode: gate a servereport/v1 document produced by cmd/dagrtaload.
// The gate is structural — schema, per-class coverage, zero transport
// errors, cache-hit evidence for the classes that exist to exercise the
// cache — because those properties are deterministic. Latency ratios
// against the baseline are printed as warnings only: wall-clock numbers
// from shared CI hardware must never fail a build.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// serveClass and serveDoc mirror cmd/dagrtaload's report types. Kept as a
// structural copy (both are package main) — unknown fields are ignored,
// missing ones are zero and fail the gate below.
type serveClass struct {
	Count   int `json:"count"`
	Errors  int `json:"errors"`
	Hit     int `json:"hit"`
	Miss    int `json:"miss"`
	Shared  int `json:"shared"`
	Latency struct {
		P50Ns int64 `json:"p50_ns"`
		P99Ns int64 `json:"p99_ns"`
	} `json:"latency"`
}

type serveDoc struct {
	Schema        string                 `json:"schema"`
	Requests      int                    `json:"requests"`
	ThroughputRPS float64                `json:"throughput_rps"`
	Classes       map[string]*serveClass `json:"classes"`
	Totals        serveClass             `json:"totals"`
}

// serveFileRE is the BENCH_SERVE_<n>.json naming convention.
var serveFileRE = regexp.MustCompile(`^BENCH_SERVE_(\d+)\.json$`)

// runServe validates input, optionally warns against a baseline, and
// copies the validated document to out when given.
func runServe(input, baseline, out string, stdout, stderr io.Writer) int {
	if input == "" {
		fmt.Fprintln(stderr, "benchreport: -serve requires -input")
		return 2
	}
	raw, err := os.ReadFile(input)
	if err != nil {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}
	var doc serveDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		fmt.Fprintf(stderr, "benchreport: decoding %s: %v\n", input, err)
		return 1
	}
	if errs := validateServe(&doc); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(stderr, "benchreport: serve gate: %v\n", e)
		}
		return 1
	}

	if baseline == "" && out != "" {
		baseline = previousServeReport(out)
	}
	if baseline != "" {
		prevRaw, err := os.ReadFile(baseline)
		if err != nil {
			fmt.Fprintln(stderr, "benchreport:", err)
			return 1
		}
		var prev serveDoc
		if err := json.Unmarshal(prevRaw, &prev); err != nil {
			fmt.Fprintf(stderr, "benchreport: decoding %s: %v\n", baseline, err)
			return 1
		}
		// A class the baseline covered disappearing IS structural.
		missing := false
		for class := range prev.Classes {
			if doc.Classes[class] == nil {
				fmt.Fprintf(stderr, "benchreport: serve gate: baseline class %q missing from this run\n", class)
				missing = true
			}
		}
		if missing {
			return 1
		}
		warnLatency(stdout, filepath.Base(baseline), &prev, &doc)
	}

	if out != "" {
		if err := os.WriteFile(out, raw, 0o644); err != nil {
			fmt.Fprintln(stderr, "benchreport:", err)
			return 1
		}
	}
	fmt.Fprintf(stdout, "serve report ok: %d requests, %.0f req/s, %d classes\n",
		doc.Totals.Count, doc.ThroughputRPS, len(doc.Classes))
	return 0
}

// validateServe returns every structural violation in the document.
func validateServe(doc *serveDoc) []error {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	if doc.Schema != "servereport/v1" {
		fail("schema %q, want servereport/v1", doc.Schema)
	}
	if doc.Totals.Count == 0 {
		fail("empty run (totals.count = 0)")
	}
	if doc.Totals.Errors > 0 {
		fail("%d failed requests", doc.Totals.Errors)
	}
	if len(doc.Classes) == 0 {
		fail("no traffic classes recorded")
	}
	sum := 0
	for class, cs := range doc.Classes {
		if cs.Count == 0 {
			fail("class %q recorded no requests", class)
		}
		if cs.Errors > 0 {
			fail("class %q had %d errors", class, cs.Errors)
		}
		sum += cs.Count
	}
	if sum != doc.Totals.Count {
		fail("class counts sum to %d but totals.count is %d", sum, doc.Totals.Count)
	}
	if doc.Requests != doc.Totals.Count {
		fail("configured %d requests but recorded %d", doc.Requests, doc.Totals.Count)
	}
	// The classes that exist to exercise the cache must show hits: a run
	// where repeat/iso traffic all missed means the cache (or the
	// canonicalization) silently stopped working.
	for _, class := range []string{"repeat", "iso"} {
		if cs := doc.Classes[class]; cs != nil && cs.Hit == 0 {
			fail("class %q produced no cache hits", class)
		}
	}
	return errs
}

// warnLatency prints per-class p50/p99 ratios vs the baseline. Warn-only.
func warnLatency(w io.Writer, baseName string, prev, cur *serveDoc) {
	classes := make([]string, 0, len(cur.Classes))
	for class := range cur.Classes {
		if prev.Classes[class] != nil {
			classes = append(classes, class)
		}
	}
	sort.Strings(classes)
	for _, class := range classes {
		p, c := prev.Classes[class], cur.Classes[class]
		r50 := ratio(float64(c.Latency.P50Ns), float64(p.Latency.P50Ns))
		r99 := ratio(float64(c.Latency.P99Ns), float64(p.Latency.P99Ns))
		note := ""
		if r50 > 3 || r99 > 3 {
			note = "  (slower than baseline; informational only)"
		}
		fmt.Fprintf(w, "serve vs %s: %-8s %5.2fx p50 %5.2fx p99%s\n", baseName, class, r50, r99, note)
	}
}

// previousServeReport finds the BENCH_SERVE_<k>.json with the largest
// k < n next to out (expected to look like .../BENCH_SERVE_<n>.json).
func previousServeReport(out string) string {
	m := serveFileRE.FindStringSubmatch(filepath.Base(out))
	if m == nil {
		return ""
	}
	n, _ := strconv.Atoi(m[1])
	entries, err := os.ReadDir(filepath.Dir(out))
	if err != nil {
		return ""
	}
	bestK := -1
	best := ""
	for _, e := range entries {
		mm := serveFileRE.FindStringSubmatch(e.Name())
		if mm == nil {
			continue
		}
		k, _ := strconv.Atoi(mm[1])
		if k < n && k > bestK {
			bestK = k
			best = filepath.Join(filepath.Dir(out), e.Name())
		}
	}
	return best
}
