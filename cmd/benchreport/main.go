// Command benchreport runs the repository's benchmark suite with -benchmem,
// emits a machine-readable JSON report (ns/op, B/op, allocs/op per
// benchmark), and compares it against a baseline report, failing on
// allocation regressions. It is the benchmark-regression harness: each PR
// commits a BENCH_<n>.json, and CI re-runs the suite against the committed
// file so an alloc/op regression larger than -threshold× fails the build.
//
// Usage:
//
//	benchreport -out BENCH_3.json                     # run, write, compare vs BENCH_2.json
//	benchreport -out report.json -baseline BENCH_2.json
//	benchreport -input bench.txt -out report.json     # parse an existing `go test -bench` log
//	benchreport -serve -input serve.json -out BENCH_SERVE_1.json  # gate a dagrtaload load run
//
// In -serve mode the input is a servereport/v1 document from
// cmd/dagrtaload: the gate fails on structural problems (bad schema,
// empty classes, transport errors, cacheable traffic with zero hits, a
// baseline class disappearing) and only WARNS on latency ratios — serve
// latency from shared CI hardware is too noisy to gate on.
//
// When -baseline is empty and -out matches BENCH_<n>.json, the baseline
// defaults to the BENCH_<k>.json with the largest k < n in the same
// directory (no comparison if none exists). Only allocs/op regressions fail
// the run: ns/op is too noisy on shared CI hardware, while allocation
// counts are deterministic for deterministic code.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	// Name is the benchmark name with any -GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkAnalyze" or "BenchmarkAblationPolicies/lifo".
	Name string `json:"name"`
	// Iterations is b.N for the measured run.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard -benchmem
	// metrics.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Delta compares one benchmark between the current and the baseline run.
type Delta struct {
	Name string `json:"name"`
	// NsRatio and AllocsRatio are current/baseline; 1.0 means unchanged,
	// <1 is an improvement.
	NsRatio     float64 `json:"ns_ratio"`
	AllocsRatio float64 `json:"allocs_ratio"`
	// Regressed marks an allocs/op ratio above the threshold.
	Regressed bool `json:"regressed,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go_version"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// BaselineFile and Deltas are present when a baseline was compared.
	BaselineFile string  `json:"baseline_file,omitempty"`
	Deltas       []Delta `json:"deltas,omitempty"`
	// MissingFromCurrent lists baseline benchmarks absent from this run —
	// a renamed or deleted benchmark silently leaves the gate otherwise.
	MissingFromCurrent []string `json:"missing_from_current,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("out", "", "output JSON path (required), e.g. BENCH_2.json")
		baseline  = fs.String("baseline", "", "baseline JSON to compare against (default: previous BENCH_<k>.json next to -out)")
		input     = fs.String("input", "", "parse this `go test -bench` output file instead of running the suite")
		pkg       = fs.String("pkg", ".", "package to benchmark")
		bench     = fs.String("bench", ".", "-bench regexp")
		benchtime = fs.String("benchtime", "1x", "-benchtime value")
		threshold = fs.Float64("threshold", 2.0, "fail when allocs/op exceeds threshold × baseline")
		serve     = fs.Bool("serve", false, "gate a servereport/v1 JSON (from cmd/dagrtaload) given via -input; latency is warn-only")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *serve {
		return runServe(*input, *baseline, *out, stdout, stderr)
	}
	if *out == "" {
		fmt.Fprintln(stderr, "benchreport: -out is required")
		return 2
	}

	var raw []byte
	var err error
	if *input != "" {
		raw, err = os.ReadFile(*input)
		if err != nil {
			fmt.Fprintln(stderr, "benchreport:", err)
			return 1
		}
	} else {
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench,
			"-benchtime", *benchtime, "-benchmem", *pkg)
		cmd.Stderr = stderr
		raw, err = cmd.Output()
		if err != nil {
			fmt.Fprintln(stderr, "benchreport: go test -bench:", err)
			return 1
		}
	}

	benches, err := parseBench(string(raw))
	if err != nil {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}
	if len(benches) == 0 {
		fmt.Fprintln(stderr, "benchreport: no benchmark lines found")
		return 1
	}

	rep := &Report{
		Schema:     "benchreport/v1",
		GoVersion:  runtime.Version(),
		Benchmarks: benches,
	}

	base := *baseline
	if base == "" {
		base = previousReport(*out)
	}
	regressed := false
	if base != "" {
		prev, err := readReport(base)
		if err != nil {
			fmt.Fprintln(stderr, "benchreport:", err)
			return 1
		}
		rep.BaselineFile = filepath.Base(base)
		rep.Deltas, rep.MissingFromCurrent, regressed = compare(prev.Benchmarks, benches, *threshold)
		for _, name := range rep.MissingFromCurrent {
			fmt.Fprintf(stderr, "benchreport: warning: baseline benchmark %s missing from this run (renamed or deleted?)\n", name)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}

	printSummary(stdout, rep)
	if regressed {
		fmt.Fprintf(stderr, "benchreport: allocs/op regression above %.1f× baseline %s\n", *threshold, base)
		return 1
	}
	return 0
}

// benchLine matches standard testing output, e.g.
//
//	BenchmarkFig6-4   2   58965415 ns/op   86468300 B/op   857633 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseBench extracts benchmark results from `go test -bench` output.
func parseBench(out string) ([]Benchmark, error) {
	var benches []Benchmark
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", line, err)
		}
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		benches = append(benches, b)
	}
	return benches, nil
}

// benchFileRE is the BENCH_<n>.json naming convention shared by -out and
// baseline auto-discovery.
var benchFileRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// previousReport finds the BENCH_<k>.json with the largest k below the
// index of out (itself expected to look like .../BENCH_<n>.json). Returns
// "" when out does not follow the convention or no predecessor exists.
func previousReport(out string) string {
	m := benchFileRE.FindStringSubmatch(filepath.Base(out))
	if m == nil {
		return ""
	}
	n, _ := strconv.Atoi(m[1])
	dir := filepath.Dir(out)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	bestK := -1
	best := ""
	for _, e := range entries {
		mm := benchFileRE.FindStringSubmatch(e.Name())
		if mm == nil {
			continue
		}
		k, _ := strconv.Atoi(mm[1])
		if k < n && k > bestK {
			bestK = k
			best = filepath.Join(dir, e.Name())
		}
	}
	return best
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	return &rep, nil
}

// compare produces per-benchmark deltas (for benchmarks present in both
// runs), the baseline benchmarks missing from the current run, and whether
// any allocs/op ratio exceeds the threshold.
func compare(baseline, current []Benchmark, threshold float64) (deltas []Delta, missing []string, regressed bool) {
	prev := make(map[string]Benchmark, len(baseline))
	for _, b := range baseline {
		prev[b.Name] = b
	}
	seen := make(map[string]bool, len(current))
	for _, b := range current {
		seen[b.Name] = true
		p, ok := prev[b.Name]
		if !ok {
			continue
		}
		d := Delta{Name: b.Name, NsRatio: ratio(b.NsPerOp, p.NsPerOp),
			AllocsRatio: ratio(float64(b.AllocsPerOp), float64(p.AllocsPerOp))}
		// A zero-alloc baseline is a hard promise (e.g. cache-hit paths):
		// ANY allocation there regresses, ratio or no ratio.
		if d.AllocsRatio > threshold || (p.AllocsPerOp == 0 && b.AllocsPerOp > 0) {
			d.Regressed = true
			regressed = true
		}
		deltas = append(deltas, d)
	}
	for _, b := range baseline {
		if !seen[b.Name] {
			missing = append(missing, b.Name)
		}
	}
	sort.Strings(missing)
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, missing, regressed
}

// ratio returns cur/base. A zero base with nonzero cur has no meaningful
// ratio; the absolute value is reported (compare flags that case as a
// regression independently of the threshold).
func ratio(cur, base float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 1
		}
		return cur
	}
	return cur / base
}

func printSummary(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "%-55s %14s %12s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, b := range rep.Benchmarks {
		fmt.Fprintf(w, "%-55s %14.0f %12d %12d\n", b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}
	if len(rep.Deltas) > 0 {
		fmt.Fprintf(w, "\nvs %s (ratio, <1 is better):\n", rep.BaselineFile)
		for _, d := range rep.Deltas {
			mark := ""
			if d.Regressed {
				mark = "  REGRESSED"
			}
			fmt.Fprintf(w, "%-55s %8.2fx ns %8.2fx allocs%s\n", d.Name, d.NsRatio, d.AllocsRatio, mark)
		}
	}
}
