package main

import (
	"encoding/json"
	"testing"
)

// FuzzAdmitRequest drives the /v1/admit request decoder with arbitrary
// bodies: it must never panic, and every decoded taskset must fingerprint
// deterministically — including across its own permutation-canonical form,
// the property the admission cache keys on. (Model validation is the
// analyzer's job and deliberately not part of decoding.)
func FuzzAdmitRequest(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{}`),
		[]byte(`{"tasks":[]}`),
		[]byte(`{"tasks":[{"graph":{"nodes":[],"edges":[]},"period":10,"deadline":10}]}`),
		[]byte(`{"tasks":[{"graph":{"nodes":[{"id":0,"wcet":2},{"id":1,"wcet":8,"kind":"offload"}],"edges":[[0,1]]},"period":60,"deadline":50,"jitter":3}]}`),
		[]byte(`{"tasks":[{"period":-1,"deadline":9223372036854775807}]}`),
		[]byte(`{"tasks":[{"graph":{"nodes":[{"id":0,"wcet":1}],"edges":[[0,0]]},"period":5,"deadline":5}]}`),
		[]byte(`{not json`),
		[]byte(``),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		ts, err := decodeAdmitRequest(body, 64)
		if err != nil {
			return
		}
		fp1 := ts.Fingerprint()
		fp2 := ts.Fingerprint()
		if fp1 != fp2 {
			t.Fatalf("fingerprint not deterministic: %s vs %s", fp1, fp2)
		}
		if got := ts.Canonical().Fingerprint(); got != fp1 {
			t.Fatalf("canonical form fingerprints differently: %s vs %s", got, fp1)
		}
		// The decoded shape must survive JSON re-encoding of its graphs
		// (the daemon caches marshaled reports, so graphs must marshal).
		for i, tk := range ts.Tasks {
			if _, err := json.Marshal(tk.G); err != nil {
				t.Fatalf("task %d graph does not marshal: %v", i, err)
			}
		}
	})
}
