// Command dagrtad is the analysis-as-a-service daemon: a long-running HTTP
// server wrapping one hetrta.Analyzer behind the deduplicating serving
// layer (internal/service). Identical — even merely isomorphic — task
// graphs are analyzed once and served from a sharded LRU cache; concurrent
// identical requests share a single execution (single-flight); batch
// requests coalesce duplicates and fan the misses out on the analyzer's
// worker pool.
//
// Endpoints:
//
//	POST /v1/analyze        task-graph JSON in (cmd/daggen schema), Report JSON out
//	POST /v1/analyze/batch  {"graphs":[...]} in, {"reports":[...]} out (per-item errors inline)
//	POST /v1/admit          sporadic-taskset JSON in ({"tasks":[{"graph":...,
//	                        "period":...,"deadline":...,"jitter":...}]}),
//	                        AdmitReport JSON out (federated + global verdicts)
//	POST /v1/admit/delta    incremental admission against a warm base:
//	                        {"base":"<taskset fingerprint>","add":[task...],
//	                        "remove":["<task digest>"...],"update":[{"old":
//	                        "<digest>","task":{...}}...]} in, the resulting
//	                        set's full AdmitReport out — byte-identical to a
//	                        whole-set /v1/admit of it; 404 with a reason when
//	                        the base is cold (client falls back to full admit)
//	POST /v1/warmup         bulk-load a store log stream (e.g. another
//	                        replica's -store file) into the cache; 409 when
//	                        the stream's generation does not match
//	GET  /healthz           liveness probe (200 while the process runs)
//	GET  /readyz            readiness probe (503 while draining or wedged)
//	GET  /statsz            cache hit rate, shard occupancy, overload counters
//	GET  /metrics           the same counters in Prometheus text format
//
// Admissions are cached under the taskset's canonical fingerprint — an
// order-insensitive hash over the member graphs' canonical fingerprints and
// sporadic parameters — so permuted or relabeled-but-isomorphic tasksets
// are served the identical cached bytes (X-Taskset-Fingerprint carries the
// hash).
//
// # Cache headers
//
// This is the single definition of the cache-status contract (the e2e
// tests pin it): every 200 from /v1/analyze, /v1/admit, and
// /v1/admit/delta carries exactly one X-Cache value —
//
//	hit     served from the report cache (memory or the -store tier)
//	shared  joined another request's in-flight execution
//	miss    this request ran the analyzer
//
// /v1/analyze additionally sets X-Fingerprint (the graph's canonical
// content hash); /v1/admit and /v1/admit/delta set X-Taskset-Fingerprint.
// Batch items report per-item state inline instead of headers.
//
// Each request is bounded by -request-timeout and aborts promptly —
// including mid-search inside the exact oracle — when the client
// disconnects. SIGINT and SIGTERM drain in-flight requests before exiting
// (-grace); /readyz flips to 503 the moment draining begins, -drain-delay
// ahead of the listener closing, so load balancers can route away first.
//
// With -store PATH, the report cache gains a disk-backed second tier: new
// results append (write-behind) to a CRC-framed record log, a restart
// warm-starts the cache by scanning it — previously served fingerprints
// return byte-identical bodies with zero recomputation — and entries
// evicted from memory revive from disk on the next request. The log is
// generation-stamped with the service configuration signature, so changing
// platform/bounds/policy flags invalidates it instead of serving stale
// records.
//
// Operating under load: a cost-classed concurrency limiter with a bounded
// wait queue (-max-concurrent, -max-queue) fronts every analysis; when the
// queue is full the request is shed with 429 and a Retry-After header
// (-retry-after). With -exact, analyses whose exact search exhausts its
// expansion budget or its -exact-slice return a valid bounds-only report
// marked "degraded" instead of stalling, a circuit breaker
// (-breaker-threshold) plus a negative cache of known-hard fingerprints
// (-hard-cache) route repeat offenders around the exact oracle entirely,
// and /statsz exposes the shed/degraded/breaker counters.
//
// Usage:
//
//	dagrtad -addr :8080 -platform 4+1
//	dagrtad -addr 127.0.0.1:0 -platform "host=4,gpu=1,fpga=2" -bounds rhom,rhet,typed-rhom -exact
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	hetrta "repro"
	"repro/internal/resilience"
	"repro/internal/resilience/faultinject"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// config is everything the HTTP layer derives from flags.
type config struct {
	addr           string
	requestTimeout time.Duration
	grace          time.Duration
	drainDelay     time.Duration
	maxBody        int64
	maxBatch       int
}

// serviceConfig is everything buildService derives from flags: the analyzer
// pipeline plus the serving layer's cache and overload-protection knobs.
type serviceConfig struct {
	platform  string
	bounds    string
	sim       bool
	exact     bool
	budget    int64
	exactPoll int64
	// exactParallel is the exact-oracle worker count; 0 defaults to
	// GOMAXPROCS — hard instances are the one stage worth every core.
	exactParallel int
	// exactSlice bounds each full analysis' exact-oracle stage; past it the
	// report degrades to bounds-only instead of erroring.
	exactSlice time.Duration
	parallel   int

	cacheSize int
	shards    int
	storePath string

	maxConcurrent    int
	maxQueue         int
	retryAfter       time.Duration
	breakerThreshold int
	hardCache        int

	inj *faultinject.Injector
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	return runWith(ctx, args, stdout, stderr, nil)
}

// runWith is run with a fault-injection seam: chaos tests arm inj to
// inject latency, errors, and panics into the serving path; production
// (run) passes nil.
func runWith(ctx context.Context, args []string, stdout, stderr io.Writer, inj *faultinject.Injector) int {
	fs := flag.NewFlagSet("dagrtad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
		platSpec   = fs.String("platform", "4+1", `platform spec, e.g. "4+1" or "host=4,gpu=1,fpga=2"`)
		boundsSpec = fs.String("bounds", "rhom,rhet", "comma-separated bounds: rhom, rhet, typed-rhom, naive")
		doSim      = fs.Bool("sim", false, "include a breadth-first simulation in every report")
		doExact    = fs.Bool("exact", false, "include the exact minimum makespan in every report")
		budget     = fs.Int64("budget", 0, "exact-solver expansion budget (0 = default)")
		exactPoll  = fs.Int64("exact-poll", 0, "exact-solver context poll interval in expansions (0 = default)")
		exactPar   = fs.Int("exact-parallel", 0, "exact-solver search workers (0 = GOMAXPROCS; results are identical at any value)")
		exactSlice = fs.Duration("exact-slice", 0, "per-analysis exact-stage time slice; past it the report degrades to bounds-only (0 = no slice)")
		parallel   = fs.Int("parallel", 0, "analyzer worker-pool size for batch requests (0 = all CPUs)")
		cacheSize  = fs.Int("cache", service.DefaultCacheEntries, "report-cache capacity in entries")
		shards     = fs.Int("cache-shards", service.DefaultShards, "report-cache shard count (rounded up to a power of two)")
		storePath  = fs.String("store", "", "disk-backed cache log path; enables warm starts and the second cache tier (empty = memory only)")
		reqTimeout = fs.Duration("request-timeout", 30*time.Second, "per-request analysis timeout")
		grace      = fs.Duration("grace", 10*time.Second, "graceful-shutdown drain timeout")
		drainDelay = fs.Duration("drain-delay", 0, "pause between flipping /readyz to 503 and closing the listener, for load balancers to route away")
		maxBody    = fs.Int64("max-body", 8<<20, "maximum request body size in bytes")
		maxBatch   = fs.Int("max-batch", 1024, "maximum graphs per batch request")
		maxConc    = fs.Int("max-concurrent", 0, "concurrent analysis cost units (0 = 2 x GOMAXPROCS); a batch of n graphs costs n")
		maxQueue   = fs.Int("max-queue", 64, "analyses that may wait for a slot before further requests are shed with 429")
		retryAfter = fs.Duration("retry-after", time.Second, "client backoff advertised in the Retry-After header of shed responses")
		brkThresh  = fs.Int("breaker-threshold", 0, "consecutive exact-stage failures that open the circuit breaker (0 = default)")
		hardCache  = fs.Int("hard-cache", 0, "capacity of the known-hard-fingerprint cache that skips the exact oracle (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	sc := serviceConfig{
		platform:      *platSpec,
		bounds:        *boundsSpec,
		sim:           *doSim,
		exact:         *doExact,
		budget:        *budget,
		exactPoll:     *exactPoll,
		exactParallel: *exactPar,

		exactSlice: *exactSlice,
		parallel:   *parallel,

		cacheSize: *cacheSize,
		shards:    *shards,
		storePath: *storePath,

		maxConcurrent:    *maxConc,
		maxQueue:         *maxQueue,
		retryAfter:       *retryAfter,
		breakerThreshold: *brkThresh,
		hardCache:        *hardCache,

		inj: inj,
	}
	svc, st, err := buildService(sc)
	if err != nil {
		fmt.Fprintln(stderr, "dagrtad:", err)
		return 2
	}
	if st != nil {
		// Close flushes the write-behind queue, so results computed up to
		// the moment of shutdown survive into the next warm start.
		defer st.Close()
	}
	cfg := config{
		addr:           *addr,
		requestTimeout: *reqTimeout,
		grace:          *grace,
		drainDelay:     *drainDelay,
		maxBody:        *maxBody,
		maxBatch:       *maxBatch,
	}
	d := &daemon{svc: svc, cfg: cfg, inj: inj, errw: stderr}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintln(stderr, "dagrtad:", err)
		return 1
	}
	fmt.Fprintf(stdout, "dagrtad listening on %s (platform %s, signature %q)\n",
		ln.Addr(), svc.Platform(), svc.Signature())

	srv := &http.Server{
		Handler:           d.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(stdout, "dagrtad: shutting down")
		// Flip readiness before closing the listener so load balancers
		// polling /readyz drain away while connections still work.
		d.draining.Store(true)
		if cfg.drainDelay > 0 {
			time.Sleep(cfg.drainDelay)
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), cfg.grace)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(stderr, "dagrtad: shutdown:", err)
			srv.Close() // grace exceeded: hard-close the stragglers
			return 1
		}
		return 0
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "dagrtad:", err)
			return 1
		}
		return 0
	}
}

// buildService assembles the Analyzer from daemon flags and wraps it in the
// serving layer with the overload-protection stack. With a store path
// configured it also opens (creating or invalidating as needed) the
// disk-backed cache log and warm-starts the service from it; the returned
// store is non-nil exactly then, and the caller owns closing it.
func buildService(sc serviceConfig) (*service.Service, *store.Store, error) {
	plat, err := hetrta.ParsePlatform(sc.platform)
	if err != nil {
		return nil, nil, err
	}
	var bounds []hetrta.Bound
	for _, name := range strings.Split(sc.bounds, ",") {
		switch strings.TrimSpace(name) {
		case "rhom":
			bounds = append(bounds, hetrta.RhomBound())
		case "rhet":
			bounds = append(bounds, hetrta.RhetBound())
		case "typed-rhom":
			bounds = append(bounds, hetrta.TypedRhomBound())
		case "naive":
			bounds = append(bounds, hetrta.NaiveBound())
		case "":
		default:
			return nil, nil, fmt.Errorf("unknown bound %q", name)
		}
	}
	if len(bounds) == 0 {
		return nil, nil, fmt.Errorf("empty bound set %q", sc.bounds)
	}
	if !sc.exact && (sc.budget != 0 || sc.exactPoll != 0 || sc.exactParallel != 0 || sc.exactSlice != 0) {
		return nil, nil, fmt.Errorf("-budget/-exact-poll/-exact-parallel/-exact-slice require -exact")
	}
	opts := []hetrta.Option{
		hetrta.WithPlatform(plat),
		hetrta.WithBounds(bounds...),
		hetrta.WithParallelism(sc.parallel),
	}
	if sc.sim {
		opts = append(opts, hetrta.WithPolicy(hetrta.BreadthFirst))
	}
	if sc.exact {
		ep := sc.exactParallel
		if ep == 0 {
			ep = runtime.GOMAXPROCS(0)
		}
		opts = append(opts, hetrta.WithExactOptions(hetrta.ExactOptions{
			MaxExpansions: sc.budget,
			CtxCheckEvery: sc.exactPoll,
			Parallelism:   ep,
		}))
		// The daemon always serves degraded-but-valid bounds when the exact
		// stage runs out of budget or slice: a serving endpoint must answer,
		// not error, on hard instances.
		opts = append(opts, hetrta.WithDegradation(hetrta.DegradeOptions{ExactSlice: sc.exactSlice}))
	}
	an, err := hetrta.NewAnalyzer(opts...)
	if err != nil {
		return nil, nil, err
	}
	svc, err := service.New(an, service.Options{
		CacheEntries: sc.cacheSize,
		Shards:       sc.shards,
		Resilience: &service.ResilienceOptions{
			Limiter: resilience.LimiterOptions{
				Capacity:   sc.maxConcurrent,
				MaxQueue:   sc.maxQueue,
				RetryAfter: sc.retryAfter,
			},
			Breaker:   resilience.BreakerOptions{FailureThreshold: sc.breakerThreshold},
			HardCache: resilience.NegCacheOptions{Capacity: sc.hardCache},
		},
		FaultInjector: sc.inj,
	})
	if err != nil {
		return nil, nil, err
	}
	if sc.storePath == "" {
		return svc, nil, nil
	}
	st, err := store.Open(store.Options{Path: sc.storePath, Generation: svc.Generation()})
	if err != nil {
		return nil, nil, err
	}
	if err := svc.AttachStore(st); err != nil {
		st.Close()
		return nil, nil, err
	}
	return svc, st, nil
}

// daemon is the HTTP layer's shared state: the service, the config, the
// fault-injection seam, and the counters /statsz reports on top of the
// service's own.
type daemon struct {
	svc  *service.Service
	cfg  config
	inj  *faultinject.Injector
	errw io.Writer

	// draining flips once shutdown begins; /readyz maps it to 503.
	draining  atomic.Bool
	recovered atomic.Uint64
	writeErrs atomic.Uint64
}

// handler wires the endpoints behind the recovery middleware.
func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", d.handleAnalyze)
	mux.HandleFunc("POST /v1/analyze/batch", d.handleBatch)
	mux.HandleFunc("POST /v1/admit", d.handleAdmit)
	mux.HandleFunc("POST /v1/admit/delta", d.handleAdmitDelta)
	mux.HandleFunc("POST /v1/warmup", d.handleWarmup)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		d.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", d.handleReady)
	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		d.writeJSON(w, http.StatusOK, statsResponse{
			Stats:               d.svc.Stats(),
			RecoveredPanics:     d.recovered.Load(),
			ResponseWriteErrors: d.writeErrs.Load(),
			Draining:            d.draining.Load(),
		})
	})
	return d.protect(mux)
}

// statsResponse is /statsz's wire shape: the service counters plus the
// HTTP layer's own.
type statsResponse struct {
	service.Stats
	RecoveredPanics     uint64 `json:"recoveredPanics"`
	ResponseWriteErrors uint64 `json:"responseWriteErrors"`
	Draining            bool   `json:"draining"`
}

// protect is the outermost middleware: a handler panic (a bug, or an
// injected fault) is recovered, counted, and mapped to 503 — one request
// dies, the daemon does not. It also hosts the Handler fault-injection
// seam.
func (d *daemon) protect(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				d.recovered.Add(1)
				fmt.Fprintf(d.errw, "dagrtad: recovered panic serving %s: %v\n", r.URL.Path, rec)
				d.httpError(w, http.StatusServiceUnavailable, "internal fault, request aborted")
			}
		}()
		if err := d.inj.Fire(faultinject.Handler); err != nil {
			d.httpError(w, http.StatusServiceUnavailable, "injected handler fault")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// handleReady is the readiness probe: 503 once shutdown begins, and while
// the service is wedged (breaker open with the limiter's queue budget
// exhausted); /healthz stays 200 throughout — the process is alive, it
// just should not receive new traffic.
func (d *daemon) handleReady(w http.ResponseWriter, r *http.Request) {
	switch {
	case d.draining.Load():
		d.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !d.svc.Ready():
		d.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "overloaded"})
	default:
		d.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// requestCtx bounds the analysis by the per-request timeout on top of the
// request context, so both client disconnect and timeout cancel the
// pipeline (the context is threaded all the way into the exact oracle's
// poll loop).
func (d *daemon) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if d.cfg.requestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d.cfg.requestTimeout)
}

// readBody reads the request body under the -max-body cap, writing the
// error response itself on failure: the cap maps to 413, a transport-level
// read failure (client hung up mid-body, short chunked stream) to 400.
func (d *daemon) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, d.cfg.maxBody))
	if err == nil {
		return body, true
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		d.httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("body exceeds the %d-byte limit", tooLarge.Limit))
	} else {
		d.httpError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
	}
	return nil, false
}

func (d *daemon) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	body, ok := d.readBody(w, r)
	if !ok {
		return
	}
	g := hetrta.NewGraph()
	if err := json.Unmarshal(body, g); err != nil {
		d.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := d.requestCtx(r)
	defer cancel()
	res, err := d.svc.Analyze(ctx, g)
	if err != nil {
		d.writeAnalysisError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheStatus(res.Hit, res.Shared))
	w.Header().Set("X-Fingerprint", res.Fingerprint.String())
	if res.Report != nil && res.Report.Degraded {
		w.Header().Set("X-Degraded", res.Report.DegradedReason)
	}
	w.WriteHeader(http.StatusOK)
	d.writeBody(w, res.Body)
}

// admitRequest / admitTask are the wire shape of /v1/admit: one sporadic
// DAG task per entry, graphs in the cmd/daggen schema.
type admitRequest struct {
	Tasks []admitTask `json:"tasks"`
}

type admitTask struct {
	Graph    json.RawMessage `json:"graph"`
	Period   int64           `json:"period"`
	Deadline int64           `json:"deadline"`
	Jitter   int64           `json:"jitter,omitempty"`
}

// decodeAdmitRequest parses an /v1/admit body into a taskset. maxTasks
// bounds the member count (the per-batch limit does double duty). Model
// validation (deadlines, jitter, graph structure) is the analyzer's
// business; this only decodes.
func decodeAdmitRequest(body []byte, maxTasks int) (hetrta.Taskset, error) {
	var req admitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return hetrta.Taskset{}, err
	}
	if len(req.Tasks) > maxTasks {
		return hetrta.Taskset{}, fmt.Errorf("%d tasks exceed the %d per-taskset limit", len(req.Tasks), maxTasks)
	}
	ts := hetrta.Taskset{Tasks: make([]hetrta.SporadicTask, len(req.Tasks))}
	for i, tk := range req.Tasks {
		g := hetrta.NewGraph()
		if len(tk.Graph) > 0 {
			if err := json.Unmarshal(tk.Graph, g); err != nil {
				return hetrta.Taskset{}, fmt.Errorf("task %d: %v", i, err)
			}
		}
		ts.Tasks[i] = hetrta.SporadicTask{G: g, Period: tk.Period, Deadline: tk.Deadline, Jitter: tk.Jitter}
	}
	return ts, nil
}

func (d *daemon) handleAdmit(w http.ResponseWriter, r *http.Request) {
	body, ok := d.readBody(w, r)
	if !ok {
		return
	}
	ts, err := decodeAdmitRequest(body, d.cfg.maxBatch)
	if err != nil {
		d.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := d.requestCtx(r)
	defer cancel()
	res, err := d.svc.Admit(ctx, ts)
	if err != nil {
		d.writeAnalysisError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheStatus(res.Hit, res.Shared))
	w.Header().Set("X-Taskset-Fingerprint", res.Fingerprint.String())
	w.WriteHeader(http.StatusOK)
	d.writeBody(w, res.Body)
}

// admitDeltaRequest is the wire shape of /v1/admit/delta: the base
// taskset's fingerprint (as returned in X-Taskset-Fingerprint by a prior
// admit of the base), tasks to add, task digests to remove, and
// replacements. Task digests come from the taskset model (graph canonical
// fingerprint + sporadic parameters); removing a digest removes one
// instance of that task.
type admitDeltaRequest struct {
	Base   string             `json:"base"`
	Add    []admitTask        `json:"add,omitempty"`
	Remove []string           `json:"remove,omitempty"`
	Update []admitDeltaUpdate `json:"update,omitempty"`
}

type admitDeltaUpdate struct {
	Old  string    `json:"old"`
	Task admitTask `json:"task"`
}

// decodeAdmitDeltaRequest parses an /v1/admit/delta body. maxTasks bounds
// the number of edits; like decodeAdmitRequest, model validation is the
// analyzer's business.
func decodeAdmitDeltaRequest(body []byte, maxTasks int) (hetrta.TasksetFingerprint, hetrta.TasksetDelta, error) {
	var req admitDeltaRequest
	var delta hetrta.TasksetDelta
	if err := json.Unmarshal(body, &req); err != nil {
		return hetrta.TasksetFingerprint{}, delta, err
	}
	base, err := hetrta.ParseTasksetFingerprint(req.Base)
	if err != nil {
		return hetrta.TasksetFingerprint{}, delta, fmt.Errorf("base: %v", err)
	}
	if edits := len(req.Add) + len(req.Remove) + len(req.Update); edits > maxTasks {
		return base, delta, fmt.Errorf("%d delta edits exceed the %d limit", edits, maxTasks)
	}
	decodeTask := func(tk admitTask, what string) (hetrta.SporadicTask, error) {
		g := hetrta.NewGraph()
		if len(tk.Graph) > 0 {
			if err := json.Unmarshal(tk.Graph, g); err != nil {
				return hetrta.SporadicTask{}, fmt.Errorf("%s: %v", what, err)
			}
		}
		return hetrta.SporadicTask{G: g, Period: tk.Period, Deadline: tk.Deadline, Jitter: tk.Jitter}, nil
	}
	for i, tk := range req.Add {
		t, err := decodeTask(tk, fmt.Sprintf("add %d", i))
		if err != nil {
			return base, delta, err
		}
		delta.Add = append(delta.Add, t)
	}
	for i, s := range req.Remove {
		dg, err := hetrta.ParseTaskDigest(s)
		if err != nil {
			return base, delta, fmt.Errorf("remove %d: %v", i, err)
		}
		delta.Remove = append(delta.Remove, dg)
	}
	for i, u := range req.Update {
		dg, err := hetrta.ParseTaskDigest(u.Old)
		if err != nil {
			return base, delta, fmt.Errorf("update %d: old: %v", i, err)
		}
		t, err := decodeTask(u.Task, fmt.Sprintf("update %d: task", i))
		if err != nil {
			return base, delta, err
		}
		delta.Update = append(delta.Update, hetrta.TaskDeltaUpdate{Old: dg, Task: t})
	}
	return base, delta, nil
}

func (d *daemon) handleAdmitDelta(w http.ResponseWriter, r *http.Request) {
	body, ok := d.readBody(w, r)
	if !ok {
		return
	}
	base, delta, err := decodeAdmitDeltaRequest(body, d.cfg.maxBatch)
	if err != nil {
		d.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := d.requestCtx(r)
	defer cancel()
	res, err := d.svc.AdmitDelta(ctx, base, delta)
	if err != nil {
		d.writeAnalysisError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheStatus(res.Hit, res.Shared))
	w.Header().Set("X-Taskset-Fingerprint", res.Fingerprint.String())
	w.WriteHeader(http.StatusOK)
	d.writeBody(w, res.Body)
}

// handleWarmup bulk-loads a store log stream — typically another replica's
// -store file — into the cache (and, when this daemon has a store, its own
// log), so a fresh replica starts warm without replaying traffic. The
// stream's generation header must match this daemon's configuration
// signature; a mismatch is 409 (the operator pointed replicas with
// different flags at each other), a malformed stream 400.
func (d *daemon) handleWarmup(w http.ResponseWriter, r *http.Request) {
	ws, err := d.svc.Warmup(http.MaxBytesReader(w, r.Body, d.cfg.maxBody))
	if err != nil {
		switch {
		case errors.Is(err, store.ErrGenerationMismatch):
			d.httpError(w, http.StatusConflict, err.Error())
		default:
			d.httpError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	d.writeJSON(w, http.StatusOK, ws)
}

// batchRequest / batchResponse are the wire shapes of /v1/analyze/batch.
// Reports mirrors Analyzer.AnalyzeBatch: one element per input graph, in
// order, with per-item failures carried in the report's "error" field —
// the same schema cmd/dagrta -json emits.
type batchRequest struct {
	Graphs []json.RawMessage `json:"graphs"`
}

type batchResponse struct {
	Reports []json.RawMessage `json:"reports"`
}

func (d *daemon) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := d.readBody(w, r)
	if !ok {
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		d.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Graphs) > d.cfg.maxBatch {
		d.httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("%d graphs exceed the %d per-batch limit", len(req.Graphs), d.cfg.maxBatch))
		return
	}
	graphs := make([]*hetrta.Graph, len(req.Graphs))
	decodeErrs := make([]error, len(req.Graphs))
	for i, raw := range req.Graphs {
		g := hetrta.NewGraph()
		if err := json.Unmarshal(raw, g); err != nil {
			decodeErrs[i] = err // reported per item, not failing the batch
			continue
		}
		graphs[i] = g
	}
	ctx, cancel := d.requestCtx(r)
	defer cancel()
	results, err := d.svc.AnalyzeBatch(ctx, graphs)
	if err != nil {
		d.writeAnalysisError(w, err)
		return
	}
	degradedCount := 0
	resp := batchResponse{Reports: make([]json.RawMessage, len(results))}
	for i, res := range results {
		switch {
		case decodeErrs[i] != nil:
			resp.Reports[i] = errorReport(d.svc, decodeErrs[i])
		case res.Err != nil:
			resp.Reports[i] = errorReport(d.svc, res.Err)
		default:
			if res.Report != nil && res.Report.Degraded {
				degradedCount++
			}
			resp.Reports[i] = res.Body
		}
	}
	// Batch callers get the degraded tally up front; each affected item
	// also carries its own "degraded"/"degradedReason" fields inline.
	w.Header().Set("X-Degraded-Count", strconv.Itoa(degradedCount))
	d.writeJSON(w, http.StatusOK, resp)
}

// errorReport renders a per-item failure in the Report wire schema
// ({"error": "..."} alongside the platform), matching the error slots of
// Analyzer.AnalyzeBatch.
func errorReport(svc *service.Service, err error) json.RawMessage {
	b, merr := json.Marshal(&hetrta.Report{Platform: svc.Platform(), Err: err.Error()})
	if merr != nil {
		return json.RawMessage(`{"error":"failed to encode error report"}`)
	}
	return b
}

// cacheStatus renders the X-Cache header value for all three serving
// endpoints — the one implementation of the contract documented in the
// package comment ("Cache headers"): hit beats shared beats miss, and
// every 200 carries exactly one of them.
func cacheStatus(hit, shared bool) string {
	switch {
	case hit:
		return "hit"
	case shared:
		return "shared"
	default:
		return "miss"
	}
}

// writeAnalysisError maps a service error to a status by what CAUSED it,
// not just where it surfaced: input-shaped failures (model validation,
// malformed deltas, no safe bound, the analysis itself rejecting the
// graph) are the client's 4xx; everything else — injected faults,
// cache-marshal failures, missing reports — is OUR 500, so operators see
// infrastructure trouble instead of clients retrying unfixable requests.
func (d *daemon) writeAnalysisError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, resilience.ErrOverloaded):
		w.Header().Set("Retry-After", retryAfterSeconds(d.svc.RetryAfter()))
		d.httpError(w, http.StatusTooManyRequests, "overloaded, retry later")
	case errors.Is(err, context.DeadlineExceeded):
		d.httpError(w, http.StatusGatewayTimeout, "analysis timed out")
	case errors.Is(err, context.Canceled):
		// The client is gone; the status is moot but 499-style closing is
		// conventional (no stdlib constant, use 408).
		d.httpError(w, http.StatusRequestTimeout, "request cancelled")
	case errors.Is(err, service.ErrUnknownBase):
		// Delta admission against a cold base: the reason tells the client
		// to fall back to a full /v1/admit of the resulting set.
		d.httpError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, hetrta.ErrInvalidInput):
		d.httpError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, service.ErrAnalysis), errors.Is(err, hetrta.ErrNoSafeBound):
		d.httpError(w, http.StatusUnprocessableEntity, err.Error())
	default:
		d.httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// retryAfterSeconds renders a backoff as the Retry-After header's
// delta-seconds form, rounding up so a sub-second hint never becomes 0
// ("retry immediately").
func retryAfterSeconds(dur time.Duration) string {
	secs := int64((dur + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (d *daemon) httpError(w http.ResponseWriter, code int, msg string) {
	d.writeJSON(w, code, map[string]string{"error": msg})
}

func (d *daemon) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		d.noteWriteError(err)
	}
}

// writeBody writes pre-serialized response bytes, counting (not masking)
// failures: by this point the status line is sent, so all that is left is
// observability.
func (d *daemon) writeBody(w http.ResponseWriter, body []byte) {
	if _, err := w.Write(body); err != nil {
		d.noteWriteError(err)
	}
}

func (d *daemon) noteWriteError(err error) {
	d.writeErrs.Add(1)
	fmt.Fprintln(d.errw, "dagrtad: writing response:", err)
}
