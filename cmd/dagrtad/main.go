// Command dagrtad is the analysis-as-a-service daemon: a long-running HTTP
// server wrapping one hetrta.Analyzer behind the deduplicating serving
// layer (internal/service). Identical — even merely isomorphic — task
// graphs are analyzed once and served from a sharded LRU cache; concurrent
// identical requests share a single execution (single-flight); batch
// requests coalesce duplicates and fan the misses out on the analyzer's
// worker pool.
//
// Endpoints:
//
//	POST /v1/analyze        task-graph JSON in (cmd/daggen schema), Report JSON out
//	POST /v1/analyze/batch  {"graphs":[...]} in, {"reports":[...]} out (per-item errors inline)
//	POST /v1/admit          sporadic-taskset JSON in ({"tasks":[{"graph":...,
//	                        "period":...,"deadline":...,"jitter":...}]}),
//	                        AdmitReport JSON out (federated + global verdicts)
//	GET  /healthz           liveness probe
//	GET  /statsz            cache hit rate, shard occupancy, in-flight executions
//
// Admissions are cached under the taskset's canonical fingerprint — an
// order-insensitive hash over the member graphs' canonical fingerprints and
// sporadic parameters — so permuted or relabeled-but-isomorphic tasksets
// are served the identical cached bytes (X-Taskset-Fingerprint carries the
// hash).
//
// Responses carry an X-Cache header (hit / miss / shared) and, for single
// analyses, X-Fingerprint with the graph's canonical content hash. Each
// request is bounded by -request-timeout and aborts promptly — including
// mid-search inside the exact oracle — when the client disconnects. SIGINT
// and SIGTERM drain in-flight requests before exiting (-grace).
//
// Usage:
//
//	dagrtad -addr :8080 -platform 4+1
//	dagrtad -addr 127.0.0.1:0 -platform "host=4,gpu=1,fpga=2" -bounds rhom,rhet,typed-rhom -exact
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	hetrta "repro"
	"repro/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// config is everything run derives from flags.
type config struct {
	addr           string
	requestTimeout time.Duration
	grace          time.Duration
	maxBody        int64
	maxBatch       int
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dagrtad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
		platSpec   = fs.String("platform", "4+1", `platform spec, e.g. "4+1" or "host=4,gpu=1,fpga=2"`)
		boundsSpec = fs.String("bounds", "rhom,rhet", "comma-separated bounds: rhom, rhet, typed-rhom, naive")
		doSim      = fs.Bool("sim", false, "include a breadth-first simulation in every report")
		doExact    = fs.Bool("exact", false, "include the exact minimum makespan in every report")
		budget     = fs.Int64("budget", 0, "exact-solver expansion budget (0 = default)")
		exactPoll  = fs.Int64("exact-poll", 0, "exact-solver context poll interval in expansions (0 = default)")
		parallel   = fs.Int("parallel", 0, "analyzer worker-pool size for batch requests (0 = all CPUs)")
		cacheSize  = fs.Int("cache", service.DefaultCacheEntries, "report-cache capacity in entries")
		shards     = fs.Int("cache-shards", service.DefaultShards, "report-cache shard count (rounded up to a power of two)")
		reqTimeout = fs.Duration("request-timeout", 30*time.Second, "per-request analysis timeout")
		grace      = fs.Duration("grace", 10*time.Second, "graceful-shutdown drain timeout")
		maxBody    = fs.Int64("max-body", 8<<20, "maximum request body size in bytes")
		maxBatch   = fs.Int("max-batch", 1024, "maximum graphs per batch request")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	svc, err := buildService(*platSpec, *boundsSpec, *doSim, *doExact, *budget, *exactPoll, *parallel, *cacheSize, *shards)
	if err != nil {
		fmt.Fprintln(stderr, "dagrtad:", err)
		return 2
	}
	cfg := config{
		addr:           *addr,
		requestTimeout: *reqTimeout,
		grace:          *grace,
		maxBody:        *maxBody,
		maxBatch:       *maxBatch,
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintln(stderr, "dagrtad:", err)
		return 1
	}
	fmt.Fprintf(stdout, "dagrtad listening on %s (platform %s, signature %q)\n",
		ln.Addr(), svc.Platform(), svc.Signature())

	srv := &http.Server{
		Handler:           newHandler(svc, cfg),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(stdout, "dagrtad: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), cfg.grace)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(stderr, "dagrtad: shutdown:", err)
			return 1
		}
		return 0
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "dagrtad:", err)
			return 1
		}
		return 0
	}
}

// buildService assembles the Analyzer from daemon flags and wraps it in the
// serving layer.
func buildService(platSpec, boundsSpec string, doSim, doExact bool, budget, exactPoll int64, parallel, cacheSize, shards int) (*service.Service, error) {
	plat, err := hetrta.ParsePlatform(platSpec)
	if err != nil {
		return nil, err
	}
	var bounds []hetrta.Bound
	for _, name := range strings.Split(boundsSpec, ",") {
		switch strings.TrimSpace(name) {
		case "rhom":
			bounds = append(bounds, hetrta.RhomBound())
		case "rhet":
			bounds = append(bounds, hetrta.RhetBound())
		case "typed-rhom":
			bounds = append(bounds, hetrta.TypedRhomBound())
		case "naive":
			bounds = append(bounds, hetrta.NaiveBound())
		case "":
		default:
			return nil, fmt.Errorf("unknown bound %q", name)
		}
	}
	if len(bounds) == 0 {
		return nil, fmt.Errorf("empty bound set %q", boundsSpec)
	}
	if !doExact && (budget != 0 || exactPoll != 0) {
		return nil, fmt.Errorf("-budget/-exact-poll require -exact")
	}
	opts := []hetrta.Option{
		hetrta.WithPlatform(plat),
		hetrta.WithBounds(bounds...),
		hetrta.WithParallelism(parallel),
	}
	if doSim {
		opts = append(opts, hetrta.WithPolicy(hetrta.BreadthFirst))
	}
	if doExact {
		opts = append(opts, hetrta.WithExactOptions(hetrta.ExactOptions{
			MaxExpansions: budget,
			CtxCheckEvery: exactPoll,
		}))
	}
	an, err := hetrta.NewAnalyzer(opts...)
	if err != nil {
		return nil, err
	}
	return service.New(an, service.Options{CacheEntries: cacheSize, Shards: shards})
}

// newHandler wires the four endpoints.
func newHandler(svc *service.Service, cfg config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		handleAnalyze(svc, cfg, w, r)
	})
	mux.HandleFunc("POST /v1/analyze/batch", func(w http.ResponseWriter, r *http.Request) {
		handleBatch(svc, cfg, w, r)
	})
	mux.HandleFunc("POST /v1/admit", func(w http.ResponseWriter, r *http.Request) {
		handleAdmit(svc, cfg, w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	return mux
}

// requestCtx bounds the analysis by the per-request timeout on top of the
// request context, so both client disconnect and timeout cancel the
// pipeline (the context is threaded all the way into the exact oracle's
// poll loop).
func requestCtx(r *http.Request, cfg config) (context.Context, context.CancelFunc) {
	if cfg.requestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), cfg.requestTimeout)
}

func handleAnalyze(svc *service.Service, cfg config, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, cfg.maxBody))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("reading body: %v", err))
		return
	}
	g := hetrta.NewGraph()
	if err := json.Unmarshal(body, g); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := requestCtx(r, cfg)
	defer cancel()
	res, err := svc.Analyze(ctx, g)
	if err != nil {
		writeAnalysisError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState(res))
	w.Header().Set("X-Fingerprint", res.Fingerprint.String())
	w.WriteHeader(http.StatusOK)
	w.Write(res.Body)
}

// admitRequest / admitTask are the wire shape of /v1/admit: one sporadic
// DAG task per entry, graphs in the cmd/daggen schema.
type admitRequest struct {
	Tasks []admitTask `json:"tasks"`
}

type admitTask struct {
	Graph    json.RawMessage `json:"graph"`
	Period   int64           `json:"period"`
	Deadline int64           `json:"deadline"`
	Jitter   int64           `json:"jitter,omitempty"`
}

// decodeAdmitRequest parses an /v1/admit body into a taskset. maxTasks
// bounds the member count (the per-batch limit does double duty). Model
// validation (deadlines, jitter, graph structure) is the analyzer's
// business; this only decodes.
func decodeAdmitRequest(body []byte, maxTasks int) (hetrta.Taskset, error) {
	var req admitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return hetrta.Taskset{}, err
	}
	if len(req.Tasks) > maxTasks {
		return hetrta.Taskset{}, fmt.Errorf("%d tasks exceed the %d per-taskset limit", len(req.Tasks), maxTasks)
	}
	ts := hetrta.Taskset{Tasks: make([]hetrta.SporadicTask, len(req.Tasks))}
	for i, tk := range req.Tasks {
		g := hetrta.NewGraph()
		if len(tk.Graph) > 0 {
			if err := json.Unmarshal(tk.Graph, g); err != nil {
				return hetrta.Taskset{}, fmt.Errorf("task %d: %v", i, err)
			}
		}
		ts.Tasks[i] = hetrta.SporadicTask{G: g, Period: tk.Period, Deadline: tk.Deadline, Jitter: tk.Jitter}
	}
	return ts, nil
}

func handleAdmit(svc *service.Service, cfg config, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, cfg.maxBody))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("reading body: %v", err))
		return
	}
	ts, err := decodeAdmitRequest(body, cfg.maxBatch)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := requestCtx(r, cfg)
	defer cancel()
	res, err := svc.Admit(ctx, ts)
	if err != nil {
		writeAnalysisError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", admitCacheState(res))
	w.Header().Set("X-Taskset-Fingerprint", res.Fingerprint.String())
	w.WriteHeader(http.StatusOK)
	w.Write(res.Body)
}

func admitCacheState(res *service.AdmitResult) string {
	switch {
	case res.Hit:
		return "hit"
	case res.Shared:
		return "shared"
	default:
		return "miss"
	}
}

// batchRequest / batchResponse are the wire shapes of /v1/analyze/batch.
// Reports mirrors Analyzer.AnalyzeBatch: one element per input graph, in
// order, with per-item failures carried in the report's "error" field —
// the same schema cmd/dagrta -json emits.
type batchRequest struct {
	Graphs []json.RawMessage `json:"graphs"`
}

type batchResponse struct {
	Reports []json.RawMessage `json:"reports"`
}

func handleBatch(svc *service.Service, cfg config, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, cfg.maxBody))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("reading body: %v", err))
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Graphs) > cfg.maxBatch {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("%d graphs exceed the %d per-batch limit", len(req.Graphs), cfg.maxBatch))
		return
	}
	graphs := make([]*hetrta.Graph, len(req.Graphs))
	decodeErrs := make([]error, len(req.Graphs))
	for i, raw := range req.Graphs {
		g := hetrta.NewGraph()
		if err := json.Unmarshal(raw, g); err != nil {
			decodeErrs[i] = err // reported per item, not failing the batch
			continue
		}
		graphs[i] = g
	}
	ctx, cancel := requestCtx(r, cfg)
	defer cancel()
	results, err := svc.AnalyzeBatch(ctx, graphs)
	if err != nil {
		writeAnalysisError(w, r, err)
		return
	}
	resp := batchResponse{Reports: make([]json.RawMessage, len(results))}
	for i, res := range results {
		switch {
		case decodeErrs[i] != nil:
			resp.Reports[i] = errorReport(svc, decodeErrs[i])
		case res.Err != nil:
			resp.Reports[i] = errorReport(svc, res.Err)
		default:
			resp.Reports[i] = res.Body
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// errorReport renders a per-item failure in the Report wire schema
// ({"error": "..."} alongside the platform), matching the error slots of
// Analyzer.AnalyzeBatch.
func errorReport(svc *service.Service, err error) json.RawMessage {
	b, merr := json.Marshal(&hetrta.Report{Platform: svc.Platform(), Err: err.Error()})
	if merr != nil {
		return json.RawMessage(`{"error":"failed to encode error report"}`)
	}
	return b
}

func cacheState(res *service.Result) string {
	switch {
	case res.Hit:
		return "hit"
	case res.Shared:
		return "shared"
	default:
		return "miss"
	}
}

func writeAnalysisError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "analysis timed out")
	case errors.Is(err, context.Canceled):
		// The client is gone; the status is moot but 499-style closing is
		// conventional (no stdlib constant, use 408).
		httpError(w, http.StatusRequestTimeout, "request cancelled")
	default:
		httpError(w, http.StatusUnprocessableEntity, err.Error())
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
