package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	hetrta "repro"
	"repro/internal/resilience/faultinject"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// parallel3Task is the deterministic hard instance: three independent
// WCET-3 host nodes on a 2-host platform pack to makespan 6 while the root
// lower bound is 5, so with -budget 1 the exact search exhausts its budget
// and the report degrades (exact-budget-exhausted) keeping the feasible
// bracket.
func parallel3Task(t *testing.T) []byte {
	return taskJSON(t, func(g *hetrta.Graph) {
		g.AddNode("a", 3, hetrta.Host)
		g.AddNode("b", 3, hetrta.Host)
		g.AddNode("c", 3, hetrta.Host)
	})
}

// hostPairTask is an easy instance: a serial host chain the heuristic
// schedules optimally, so the exact stage proves Optimal without a single
// expansion even under -budget 1.
func hostPairTask(t *testing.T) []byte {
	return taskJSON(t, func(g *hetrta.Graph) {
		a := g.AddNode("a", 4, hetrta.Host)
		b := g.AddNode("b", 6, hetrta.Host)
		g.MustAddEdge(a, b)
	})
}

// hostChainTaskW builds distinct (non-isomorphic) easy chains, so
// saturation tests get one execution per request instead of cache hits.
func hostChainTaskW(t *testing.T, w int64) []byte {
	return taskJSON(t, func(g *hetrta.Graph) {
		a := g.AddNode("a", w, hetrta.Host)
		b := g.AddNode("b", w+1, hetrta.Host)
		g.MustAddEdge(a, b)
	})
}

func waitInFlight(t *testing.T, base string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, base).InFlight < want {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the analyzer")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSheddingUnderSaturation saturates a capacity-1, queue-0 daemon with
// concurrent distinct analyses held open by injected oracle latency: the
// overflow must be shed with 429 + Retry-After while every accepted
// request still completes well inside -request-timeout.
func TestSheddingUnderSaturation(t *testing.T) {
	inj := faultinject.New(faultinject.Rule{Point: faultinject.Exec, Latency: 300 * time.Millisecond})
	base := startDaemonInj(t, inj,
		"-max-concurrent", "1", "-max-queue", "0",
		"-request-timeout", "5s", "-retry-after", "2s")

	const n = 6
	bodies := make([][]byte, n)
	for i := range bodies {
		bodies[i] = hostChainTaskW(t, int64(2+i))
	}
	type outcome struct {
		status     int
		retryAfter string
		elapsed    time.Duration
	}
	results := make(chan outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			start := time.Now()
			resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After"), time.Since(start)}
		}(bodies[i])
	}
	wg.Wait()
	close(results)

	var ok200, shed429 int
	for r := range results {
		switch r.status {
		case http.StatusOK:
			ok200++
			if r.elapsed >= 5*time.Second {
				t.Errorf("accepted request took %v, not bounded by -request-timeout", r.elapsed)
			}
		case http.StatusTooManyRequests:
			shed429++
			if r.retryAfter != "2" {
				t.Errorf("429 Retry-After = %q, want %q", r.retryAfter, "2")
			}
		default:
			t.Errorf("status = %d, want 200 or 429", r.status)
		}
	}
	if ok200 == 0 {
		t.Error("no request was accepted under saturation")
	}
	if shed429 == 0 {
		t.Error("no request was shed under saturation")
	}
	st := getStats(t, base)
	if st.Overload == nil || st.Overload.Shed == 0 {
		t.Errorf("statsz shed counter did not advance: %+v", st.Overload)
	}
}

// TestDegradedServingEndToEnd: a budget-starved exact stage returns a
// valid bounds-marked degraded report (X-Degraded header, degraded fields
// in the body), the degraded result is cached and served byte-identically,
// and easy instances are unaffected.
func TestDegradedServingEndToEnd(t *testing.T) {
	base := startDaemon(t, "-platform", "2+1", "-exact", "-budget", "1")

	r1, body1 := post(t, base+"/v1/analyze", parallel3Task(t))
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("degraded analyze = %d: %s", r1.StatusCode, body1)
	}
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}
	if got := r1.Header.Get("X-Degraded"); got != hetrta.DegradedExactBudget {
		t.Fatalf("X-Degraded = %q, want %q", got, hetrta.DegradedExactBudget)
	}
	var rep hetrta.Report
	if err := json.Unmarshal(body1, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.DegradedReason != hetrta.DegradedExactBudget {
		t.Fatalf("report not marked degraded: %s", body1)
	}
	if rep.Exact == nil || rep.Exact.Makespan != 6 || rep.Exact.LowerBound != 5 {
		t.Fatalf("degraded report lost the feasible bracket: %s", body1)
	}

	r2, body2 := post(t, base+"/v1/analyze", parallel3Task(t))
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat degraded X-Cache = %q, want hit", got)
	}
	if got := r2.Header.Get("X-Degraded"); got != hetrta.DegradedExactBudget {
		t.Fatalf("repeat X-Degraded = %q, want %q", got, hetrta.DegradedExactBudget)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cached degraded response not byte-identical")
	}

	r3, body3 := post(t, base+"/v1/analyze", chainTask(t))
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("easy analyze = %d: %s", r3.StatusCode, body3)
	}
	if got := r3.Header.Get("X-Degraded"); got != "" {
		t.Fatalf("easy instance marked degraded: %q", got)
	}

	st := getStats(t, base)
	if st.Degraded < 2 {
		t.Fatalf("degraded counter = %d, want >= 2", st.Degraded)
	}
	if st.HardInstances == nil || st.HardInstances.Entries != 1 {
		t.Fatalf("hard-instance cache = %+v, want 1 entry", st.HardInstances)
	}
	if st.Breaker == nil || st.Breaker.State != "closed" {
		t.Fatalf("breaker = %+v, want closed (one failure is below threshold)", st.Breaker)
	}
}

// TestBatchDegradedVisibility: batch responses count degraded items in
// X-Degraded-Count, carry per-item degraded fields inline, and the whole
// body is pinned by a golden file.
func TestBatchDegradedVisibility(t *testing.T) {
	base := startDaemon(t, "-platform", "2+1", "-bounds", "rhom", "-exact", "-budget", "1")

	req, err := json.Marshal(map[string]any{"graphs": []json.RawMessage{
		hostPairTask(t),  // easy: proven optimal, not degraded
		parallel3Task(t), // hard: budget-exhausted, degraded
		parallel3Task(t), // duplicate: coalesces, shares the degraded entry
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := post(t, base+"/v1/analyze/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Degraded-Count"); got != "2" {
		t.Fatalf("X-Degraded-Count = %q, want 2", got)
	}
	var out struct {
		Reports []json.RawMessage `json:"reports"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(out.Reports))
	}
	if !bytes.Equal(out.Reports[1], out.Reports[2]) {
		t.Fatal("duplicate degraded slots served different bytes")
	}
	var easy, hard hetrta.Report
	if err := json.Unmarshal(out.Reports[0], &easy); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out.Reports[1], &hard); err != nil {
		t.Fatal(err)
	}
	if easy.Degraded {
		t.Fatalf("easy slot marked degraded: %s", out.Reports[0])
	}
	if !hard.Degraded || hard.DegradedReason != hetrta.DegradedExactBudget {
		t.Fatalf("hard slot not marked degraded: %s", out.Reports[1])
	}

	var pretty bytes.Buffer
	if err := json.Indent(&pretty, data, "", "  "); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden", "batch_degraded.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, pretty.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update): %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(want), bytes.TrimSpace(pretty.Bytes())) {
		t.Errorf("batch response drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", golden, pretty.Bytes(), want)
	}
}

// TestReadyz: a freshly started daemon is ready.
func TestReadyz(t *testing.T) {
	base := startDaemon(t)
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ready") {
		t.Fatalf("readyz = %d %s, want 200 ready", resp.StatusCode, body)
	}
}

// TestBodySizeAndReadErrors: exceeding -max-body is 413 with the limit in
// the message; a transport-level read failure (client died mid-body) is
// 400, not 413.
func TestBodySizeAndReadErrors(t *testing.T) {
	base := startDaemon(t, "-max-body", "64")

	big := bytes.Repeat([]byte("x"), 256)
	for _, ep := range []string{"/v1/analyze", "/v1/analyze/batch", "/v1/admit"} {
		resp, body := post(t, base+ep, big)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body = %d (%s), want 413", ep, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "64-byte limit") {
			t.Errorf("%s 413 body lacks the limit: %s", ep, body)
		}
	}

	// Announce 40 bytes, send 8, half-close: the server's read fails below
	// the size cap and must map to 400.
	host := strings.TrimPrefix(base, "http://")
	conn, err := net.Dial("tcp", host)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/analyze HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: 40\r\n\r\n{\"nodes\"", host)
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	raw, _ := io.ReadAll(conn)
	if !strings.Contains(string(raw), "HTTP/1.1 400") {
		t.Fatalf("truncated body response:\n%s\nwant 400", raw)
	}
}

// TestHandlerPanicRecovered: an injected handler panic kills one request
// (503) but never the daemon, and is counted in /statsz.
func TestHandlerPanicRecovered(t *testing.T) {
	inj := faultinject.New(faultinject.Rule{Point: faultinject.Handler, Count: 1, Panic: true})
	base := startDaemonInj(t, inj)

	resp, body := post(t, base+"/v1/analyze", chainTask(t))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("panicked request = %d (%s), want 503", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "internal fault") {
		t.Fatalf("503 body = %s", body)
	}

	h, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("daemon died after handler panic: %v", err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic = %d", h.StatusCode)
	}
	resp2, body2 := post(t, base+"/v1/analyze", chainTask(t))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("analyze after panic = %d (%s), want 200", resp2.StatusCode, body2)
	}
	if st := getStats(t, base); st.RecoveredPanics != 1 {
		t.Fatalf("recoveredPanics = %d, want 1", st.RecoveredPanics)
	}
}

// TestGracefulShutdownDrainsInFlight: once shutdown begins /readyz flips
// to 503 during -drain-delay, the in-flight (injected-latency) analysis
// still completes with 200 inside -grace, the daemon exits 0, and new
// connections are refused afterwards.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	inj := faultinject.New(faultinject.Rule{Point: faultinject.Exec, Count: 1, Latency: 1200 * time.Millisecond})
	h := launchDaemon(t, inj, "-grace", "10s", "-drain-delay", "700ms")

	task := chainTask(t)
	type result struct {
		status int
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(h.base+"/v1/analyze", "application/json", bytes.NewReader(task))
		if err != nil {
			resCh <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		resCh <- result{resp.StatusCode, nil}
	}()
	waitInFlight(t, h.base, 1)
	h.cancel()

	sawDraining := false
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(h.base + "/readyz")
		if err != nil {
			break // listener closed; the drain window is over
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(body), "draining") {
			sawDraining = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawDraining {
		t.Error("never observed /readyz = 503 draining during shutdown")
	}

	select {
	case r := <-resCh:
		if r.err != nil || r.status != http.StatusOK {
			t.Errorf("in-flight request during drain: status %d err %v, want 200", r.status, r.err)
		}
	case <-time.After(15 * time.Second):
		t.Error("in-flight request never completed during drain")
	}
	select {
	case code := <-h.done:
		if code != 0 {
			t.Errorf("daemon exited with code %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after draining")
	}
	if _, err := http.Post(h.base+"/v1/analyze", "application/json", bytes.NewReader(task)); err == nil {
		t.Error("new connection accepted after shutdown")
	}
}

// TestShutdownGraceExceeded: an analysis outliving -grace forces the
// error exit path (code 1) after the stragglers are hard-closed.
func TestShutdownGraceExceeded(t *testing.T) {
	inj := faultinject.New(faultinject.Rule{Point: faultinject.Exec, Count: 1, Latency: 2 * time.Second})
	h := launchDaemon(t, inj, "-grace", "150ms")

	task := chainTask(t)
	go func() {
		resp, err := http.Post(h.base+"/v1/analyze", "application/json", bytes.NewReader(task))
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitInFlight(t, h.base, 1)
	h.cancel()

	select {
	case code := <-h.done:
		if code != 1 {
			t.Fatalf("exit code = %d, want 1 (grace exceeded)", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after the grace period expired")
	}
}
