package main

import (
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/store"
)

var (
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[-+]?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?)$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$`)
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
)

// parsePromText is a strict Prometheus text-format (0.0.4) validator: it
// fails the test on any malformed line, a sample without a preceding
// TYPE, a duplicate family header, a counter not ending in _total, or a
// negative counter value. It returns samples keyed by name{labels}.
func parsePromText(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	types := make(map[string]string)
	helped := make(map[string]bool)
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			if helped[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) || (typ != "counter" && typ != "gauge") {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				t.Fatalf("line %d: counter %s does not end in _total", ln+1, name)
			}
			types[name] = typ
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		default:
			m := promSampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample: %q", ln+1, line)
			}
			name, labels, value := m[1], m[2], m[3]
			typ, ok := types[name]
			if !ok {
				t.Fatalf("line %d: sample %s has no preceding TYPE", ln+1, name)
			}
			if labels != "" {
				for _, pair := range strings.Split(strings.Trim(labels, "{}"), ",") {
					if !promLabelRe.MatchString(pair) {
						t.Fatalf("line %d: malformed label %q", ln+1, pair)
					}
				}
			}
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				t.Fatalf("line %d: unparseable value %q", ln+1, value)
			}
			if typ == "counter" && v < 0 {
				t.Fatalf("line %d: negative counter %s = %v", ln+1, name, v)
			}
			key := name + labels
			if _, dup := samples[key]; dup {
				t.Fatalf("line %d: duplicate sample %s", ln+1, key)
			}
			samples[key] = v
		}
	}
	return samples
}

// TestRenderMetricsValid renders a synthetic snapshot with every optional
// block populated and runs it through the strict validator, pinning both
// the format and a few values.
func TestRenderMetricsValid(t *testing.T) {
	st := statsResponse{
		Stats: service.Stats{
			Requests: 10, Hits: 4, Misses: 6, Executions: 6, Coalesced: 2,
			Failures: 1, Degraded: 3, EvalHits: 7, EvalMisses: 5,
			InFlight: 2, Entries: 9, Capacity: 64, Evictions: 1,
			ShardEntries: []int{3, 6},
			Overload:     &resilience.LimiterStats{Capacity: 8, InUse: 2, Admitted: 20, Shed: 4},
			Breaker:      &resilience.BreakerStats{State: "open", Opens: 2, Rejected: 5},
			HardInstances: &resilience.NegCacheStats{
				Entries: 1, Capacity: 16, Added: 2, Probes: 9,
			},
			Store: &service.StoreStats{
				Stats: store.Stats{
					RecordsLoaded: 12, BytesLoaded: 4096, TailTruncations: 1,
					Appends: 30, SizeBytes: 8192, LiveKeys: 12,
				},
				WarmLoaded: 12, WarmHits: 3,
			},
		},
		RecoveredPanics:     1,
		ResponseWriteErrors: 2,
		Draining:            true,
	}
	samples := parsePromText(t, renderMetrics(st))
	want := map[string]float64{
		"dagrtad_requests_total":                 10,
		"dagrtad_cache_hits_total":               4,
		"dagrtad_cache_shared_total":             2,
		"dagrtad_cache_evictions_total":          1,
		"dagrtad_degraded_total":                 3,
		"dagrtad_in_flight":                      2,
		"dagrtad_draining":                       1,
		`dagrtad_cache_shard_entries{shard="1"}`: 6,
		"dagrtad_overload_shed_total":            4,
		"dagrtad_breaker_open":                   1,
		"dagrtad_hard_entries":                   1,
		"dagrtad_store_records_loaded_total":     12,
		"dagrtad_store_bytes_loaded_total":       4096,
		"dagrtad_store_tail_truncations_total":   1,
		"dagrtad_store_warm_hits_total":          3,
		"dagrtad_store_size_bytes":               8192,
		"dagrtad_response_write_errors_total":    2,
	}
	for k, v := range want {
		if got, ok := samples[k]; !ok || got != v {
			t.Errorf("sample %s = %v (present=%v), want %v", k, got, ok, v)
		}
	}
}

// TestRenderMetricsMinimal: without resilience or a store, the optional
// families are absent and the output still validates.
func TestRenderMetricsMinimal(t *testing.T) {
	samples := parsePromText(t, renderMetrics(statsResponse{
		Stats: service.Stats{ShardEntries: []int{0}},
	}))
	for _, absent := range []string{
		"dagrtad_overload_shed_total", "dagrtad_breaker_open",
		"dagrtad_hard_entries", "dagrtad_store_appends_total",
	} {
		if _, ok := samples[absent]; ok {
			t.Errorf("metric %s present without its subsystem", absent)
		}
	}
	if _, ok := samples["dagrtad_requests_total"]; !ok {
		t.Error("core counter missing")
	}
}

// TestMetricsEndpoint scrapes a live daemon and validates the exposition
// plus the advertised content type.
func TestMetricsEndpoint(t *testing.T) {
	base := startDaemon(t)
	if _, body := post(t, base+"/v1/analyze", chainTask(t)); len(body) == 0 {
		t.Fatal("analyze returned empty body")
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, string(raw))
	if samples["dagrtad_requests_total"] < 1 {
		t.Fatalf("requests_total = %v after one request", samples["dagrtad_requests_total"])
	}
	if samples["dagrtad_executions_total"] != 1 {
		t.Fatalf("executions_total = %v, want 1", samples["dagrtad_executions_total"])
	}
}
