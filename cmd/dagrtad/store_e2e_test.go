// End-to-end tests for the durable serving tier: restart-with-store warm
// starts (byte-identical bodies, zero recomputation, delta bases that
// survive the restart), torn-tail boot recovery, the /v1/warmup bulk-load
// endpoint, and the X-Cache header contract across all three analysis
// endpoints.
package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	hetrta "repro"
)

// stopDaemon shuts a launchDaemon-started daemon down and asserts a
// clean exit; the deferred store Close inside runWith flushes the log
// before the exit code is delivered.
func stopDaemon(t *testing.T, h *daemonHandle) {
	t.Helper()
	h.cancel()
	select {
	case code := <-h.done:
		if code != 0 {
			t.Fatalf("daemon exited with code %d: %s", code, h.out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not shut down: %s", h.out.String())
	}
}

// storeArgs is the flag set shared by the restart tests: admission bounds
// matching admitBody plus a disk store at path.
func storeArgs(path string) []string {
	return []string{"-store", path, "-platform", "4+1", "-bounds", "rhom,rhet,typed-rhom"}
}

// TestStoreRestartE2E is the acceptance e2e: serve an analysis and an
// admission, restart the daemon on the same log, and require warm-started
// byte-identical responses with zero analyzer executions, a delta
// admission that finds its pre-restart base (no 404), and a /metrics page
// that validates as Prometheus text with the store families present.
func TestStoreRestartE2E(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "cache.log")

	h1 := launchDaemon(t, nil, storeArgs(logPath)...)
	resp, aBody1 := post(t, h1.base+"/v1/analyze", chainTask(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d: %s", resp.StatusCode, aBody1)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("cold analyze X-Cache = %q, want miss", got)
	}
	resp, mBody1 := post(t, h1.base+"/v1/admit", admitBody(t, false))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admit: %d: %s", resp.StatusCode, mBody1)
	}
	baseFP := resp.Header.Get("X-Taskset-Fingerprint")
	if baseFP == "" {
		t.Fatal("missing X-Taskset-Fingerprint")
	}
	stopDaemon(t, h1)

	// Restart over the same log.
	h2 := launchDaemon(t, nil, storeArgs(logPath)...)
	defer stopDaemon(t, h2)

	st := getStats(t, h2.base)
	if st.Store == nil {
		t.Fatal("restarted daemon reports no store stats")
	}
	if st.Store.WarmLoaded == 0 {
		t.Fatalf("warm start loaded nothing: %+v", st.Store)
	}

	// Previously served fingerprints: byte-identical hits, no recomputation.
	resp, aBody2 := post(t, h2.base+"/v1/analyze", chainTask(t))
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("warm analyze: status %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(aBody1, aBody2) {
		t.Fatalf("warm analyze body differs:\n%s\n%s", aBody1, aBody2)
	}
	resp, mBody2 := post(t, h2.base+"/v1/admit", admitBody(t, true)) // permuted isomorph
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("warm admit: status %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(mBody1, mBody2) {
		t.Fatalf("warm admit body differs:\n%s\n%s", mBody1, mBody2)
	}
	if got := resp.Header.Get("X-Taskset-Fingerprint"); got != baseFP {
		t.Fatalf("warm admit fingerprint %q != pre-restart %q", got, baseFP)
	}
	if st := getStats(t, h2.base); st.Executions != 0 {
		t.Fatalf("warm-started daemon executed %d analyses, want 0", st.Executions)
	}

	// Delta admission anchors on the warm-loaded base: 200, not 404.
	dresp, dbody := post(t, h2.base+"/v1/admit/delta", deltaBody(t, baseFP, map[string]any{
		"add": []map[string]any{wireTask(t, deltaTask3())},
	}))
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delta on warm base: %d: %s", dresp.StatusCode, dbody)
	}
	if got := dresp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("cold delta X-Cache = %q, want miss", got)
	}
	if st := getStats(t, h2.base); st.Executions != 1 {
		t.Fatalf("executions after delta = %d, want exactly the delta run", st.Executions)
	}

	// /metrics validates and exposes the store tier.
	mresp, err := http.Get(h2.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, string(raw))
	if samples["dagrtad_store_warm_loaded_total"] == 0 {
		t.Fatal("metrics missing warm-load evidence")
	}
	if samples["dagrtad_store_records_loaded_total"] == 0 {
		t.Fatal("metrics missing boot-scan evidence")
	}
	if samples["dagrtad_executions_total"] != 1 {
		t.Fatalf("executions_total = %v, want 1", samples["dagrtad_executions_total"])
	}
}

// TestStoreTornTailBootE2E: a crash-truncated final record is dropped and
// counted at boot — never a boot failure — and records before the tear
// still serve warm hits.
func TestStoreTornTailBootE2E(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "cache.log")

	h1 := launchDaemon(t, nil, "-store", logPath)
	_, body1 := post(t, h1.base+"/v1/analyze", chainTask(t))
	// A second, structurally different graph: its record lands after the
	// first and is the one the tear destroys.
	second := taskJSON(t, func(g *hetrta.Graph) {
		a := g.AddNode("a", 5, hetrta.Host)
		b := g.AddNode("b", 7, hetrta.Offload)
		g.MustAddEdge(a, b)
	})
	if resp, body := post(t, h1.base+"/v1/analyze", second); resp.StatusCode != http.StatusOK {
		t.Fatalf("second analyze: %d: %s", resp.StatusCode, body)
	}
	stopDaemon(t, h1)

	info, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	base := startDaemon(t, "-store", logPath)
	st := getStats(t, base)
	if st.Store == nil || st.Store.TailTruncations != 1 {
		t.Fatalf("torn tail not counted: %+v", st.Store)
	}
	resp, body2 := post(t, base+"/v1/analyze", chainTask(t))
	if resp.Header.Get("X-Cache") != "hit" || !bytes.Equal(body1, body2) {
		t.Fatalf("pre-tear record lost (X-Cache=%q)", resp.Header.Get("X-Cache"))
	}
}

// TestWarmupEndToEnd: one daemon's log POSTed to a peer's /v1/warmup
// loads the peer's cache; a peer under a different platform rejects the
// stream with 409; garbage is a 400.
func TestWarmupEndToEnd(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "cache.log")

	hA := launchDaemon(t, nil, storeArgs(logPath)...)
	_, aBody := post(t, hA.base+"/v1/analyze", chainTask(t))
	resp, _ := post(t, hA.base+"/v1/admit", admitBody(t, false))
	baseFP := resp.Header.Get("X-Taskset-Fingerprint")
	stopDaemon(t, hA)
	logBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	// Peer B: same configuration, no store of its own.
	bBase := startDaemon(t, "-platform", "4+1", "-bounds", "rhom,rhet,typed-rhom")
	wresp, wbody := post(t, bBase+"/v1/warmup", logBytes)
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: %d: %s", wresp.StatusCode, wbody)
	}
	var ws struct {
		Records int  `json:"records"`
		Loaded  int  `json:"loaded"`
		Skipped int  `json:"skipped"`
		Trunc   bool `json:"truncated"`
	}
	if err := json.Unmarshal(wbody, &ws); err != nil {
		t.Fatalf("warmup summary: %v: %s", err, wbody)
	}
	if ws.Loaded == 0 || ws.Skipped != 0 || ws.Trunc {
		t.Fatalf("warmup summary = %+v", ws)
	}
	resp, body := post(t, bBase+"/v1/analyze", chainTask(t))
	if resp.Header.Get("X-Cache") != "hit" || !bytes.Equal(aBody, body) {
		t.Fatalf("warmed peer not serving identical hit (X-Cache=%q)", resp.Header.Get("X-Cache"))
	}
	// The warmed base anchors delta admission on the peer too.
	dresp, dbody := post(t, bBase+"/v1/admit/delta", deltaBody(t, baseFP, map[string]any{
		"add": []map[string]any{wireTask(t, deltaTask3())},
	}))
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delta on warmed peer: %d: %s", dresp.StatusCode, dbody)
	}

	// Peer C: different platform → different generation → 409, nothing loaded.
	cBase := startDaemon(t, "-platform", "2+1")
	cresp, cbody := post(t, cBase+"/v1/warmup", logBytes)
	if cresp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched warmup: %d: %s", cresp.StatusCode, cbody)
	}
	if st := getStats(t, cBase); st.Entries != 0 {
		t.Fatal("mismatched warmup loaded entries")
	}

	// Garbage stream: 400.
	gresp, _ := post(t, cBase+"/v1/warmup", []byte("not a store log"))
	if gresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage warmup: %d, want 400", gresp.StatusCode)
	}
}

// TestCacheHeaderContractE2E pins the documented X-Cache contract on all
// three endpoints: first service of a key is "miss" (or "shared"),
// repeats are "hit", and the header is always one of the three values.
func TestCacheHeaderContractE2E(t *testing.T) {
	base := startDaemon(t, "-platform", "4+1", "-bounds", "rhom,rhet,typed-rhom")
	valid := map[string]bool{"hit": true, "miss": true, "shared": true}
	check := func(op string, resp *http.Response, body []byte, want string) {
		t.Helper()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d: %s", op, resp.StatusCode, body)
		}
		got := resp.Header.Get("X-Cache")
		if !valid[got] {
			t.Fatalf("%s: X-Cache = %q, not in the documented vocabulary", op, got)
		}
		if got != want {
			t.Fatalf("%s: X-Cache = %q, want %q", op, got, want)
		}
	}

	resp, body := post(t, base+"/v1/analyze", chainTask(t))
	check("analyze cold", resp, body, "miss")
	resp, body = post(t, base+"/v1/analyze", chainTask(t))
	check("analyze repeat", resp, body, "hit")
	resp, body = post(t, base+"/v1/analyze", relabeledChainTask(t))
	check("analyze isomorph", resp, body, "hit")

	resp, body = post(t, base+"/v1/admit", admitBody(t, false))
	check("admit cold", resp, body, "miss")
	fp := resp.Header.Get("X-Taskset-Fingerprint")
	resp, body = post(t, base+"/v1/admit", admitBody(t, true))
	check("admit isomorph", resp, body, "hit")

	delta := func() []byte {
		return deltaBody(t, fp, map[string]any{
			"add": []map[string]any{wireTask(t, deltaTask3())},
		})
	}
	resp, body = post(t, base+"/v1/admit/delta", delta())
	check("delta cold", resp, body, "miss")
	if resp.Header.Get("X-Taskset-Fingerprint") == "" {
		t.Fatal("delta response missing X-Taskset-Fingerprint")
	}
	resp, body = post(t, base+"/v1/admit/delta", delta())
	check("delta repeat", resp, body, "hit")
}
