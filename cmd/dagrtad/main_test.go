package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	hetrta "repro"
	"repro/internal/resilience/faultinject"
	"repro/internal/taskgen"
)

type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRe = regexp.MustCompile(`listening on ([^ ]+)`)

// daemonHandle is a launched daemon the test controls directly: cancel
// triggers shutdown, done carries the exit code, out the daemon's stdout.
type daemonHandle struct {
	base   string
	cancel context.CancelFunc
	done   chan int
	out    *syncBuffer
}

// launchDaemon runs the real daemon main loop on an ephemeral port
// (optionally with a fault injector armed) and hands the caller control
// over shutdown. Most tests want startDaemon, which registers a
// clean-exit cleanup.
func launchDaemon(t *testing.T, inj *faultinject.Injector, args ...string) *daemonHandle {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	h := &daemonHandle{cancel: cancel, done: make(chan int, 1), out: &syncBuffer{}}
	go func() {
		h.done <- runWith(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), h.out, os.Stderr, inj)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRe.FindStringSubmatch(h.out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case code := <-h.done:
			t.Fatalf("daemon exited early with code %d: %s", code, h.out.String())
		case <-time.After(2 * time.Millisecond):
		}
	}
	if addr == "" {
		t.Fatalf("daemon never reported its address: %q", h.out.String())
	}
	h.base = "http://" + addr
	return h
}

// startDaemon runs the daemon and returns its base URL; shutdown (clean,
// exit 0) is checked in cleanup.
func startDaemon(t *testing.T, args ...string) string {
	return startDaemonInj(t, nil, args...)
}

// startDaemonInj is startDaemon with a fault injector armed.
func startDaemonInj(t *testing.T, inj *faultinject.Injector, args ...string) string {
	t.Helper()
	h := launchDaemon(t, inj, args...)
	t.Cleanup(func() {
		h.cancel()
		select {
		case code := <-h.done:
			if code != 0 {
				t.Errorf("daemon exited with code %d", code)
			}
		case <-time.After(15 * time.Second):
			t.Error("daemon did not shut down within the grace period")
		}
	})
	return h.base
}

func taskJSON(t *testing.T, build func(g *hetrta.Graph)) []byte {
	t.Helper()
	g := hetrta.NewGraph()
	build(g)
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func chainTask(t *testing.T) []byte {
	return taskJSON(t, func(g *hetrta.Graph) {
		load := g.AddNode("load", 2, hetrta.Host)
		kern := g.AddNode("kernel", 8, hetrta.Offload)
		post := g.AddNode("post", 3, hetrta.Host)
		g.MustAddEdge(load, kern)
		g.MustAddEdge(kern, post)
	})
}

// relabeledChainTask is chainTask with node IDs assigned in a different
// order — isomorphic, so it must share chainTask's cache entry.
func relabeledChainTask(t *testing.T) []byte {
	return taskJSON(t, func(g *hetrta.Graph) {
		post := g.AddNode("post", 3, hetrta.Host)
		kern := g.AddNode("kernel", 8, hetrta.Offload)
		load := g.AddNode("load", 2, hetrta.Host)
		g.MustAddEdge(load, kern)
		g.MustAddEdge(kern, post)
	})
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getStats(t *testing.T, base string) statsResponse {
	t.Helper()
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestEndToEndCacheHit is the acceptance path: same graph POSTed twice,
// second response is a cache hit (verified via /statsz and X-Cache) and
// byte-identical to the first; an isomorphic relabeling also hits.
func TestEndToEndCacheHit(t *testing.T) {
	base := startDaemon(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	r1, body1 := post(t, base+"/v1/analyze", chainTask(t))
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first analyze = %d: %s", r1.StatusCode, body1)
	}
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}
	if fp := r1.Header.Get("X-Fingerprint"); len(fp) != 64 {
		t.Fatalf("X-Fingerprint = %q, want 64 hex chars", fp)
	}

	r2, body2 := post(t, base+"/v1/analyze", chainTask(t))
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("second analyze = %d", r2.StatusCode)
	}
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache hit not byte-identical:\n%s\n%s", body1, body2)
	}

	r3, body3 := post(t, base+"/v1/analyze", relabeledChainTask(t))
	if got := r3.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("relabeled X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body3) {
		t.Fatal("relabeled graph served different bytes")
	}
	if r1.Header.Get("X-Fingerprint") != r3.Header.Get("X-Fingerprint") {
		t.Fatal("relabeled graph got a different fingerprint")
	}

	st := getStats(t, base)
	if st.Hits != 2 || st.Misses != 1 || st.Executions != 1 || st.Entries != 1 {
		t.Fatalf("statsz = %+v, want 2 hits / 1 miss / 1 execution / 1 entry", st)
	}

	// The report must actually decode and carry the configured bounds.
	var rep hetrta.Report
	if err := json.Unmarshal(body1, &rep); err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.BoundValue("rhet"); !ok {
		t.Fatalf("report carries no rhet bound: %s", body1)
	}
}

func TestBatchEndpoint(t *testing.T) {
	base := startDaemon(t)

	req := map[string]any{"graphs": []json.RawMessage{
		chainTask(t),
		json.RawMessage(`{"nodes":[{"kind":"bogus"}]}`), // per-item decode error
		chainTask(t), // duplicate: coalesces with slot 0
	}}
	body, _ := json.Marshal(req)
	resp, data := post(t, base+"/v1/analyze/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Reports []json.RawMessage `json:"reports"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(out.Reports))
	}
	if !bytes.Equal(out.Reports[0], out.Reports[2]) {
		t.Fatal("duplicate batch slots served different bytes")
	}
	var errRep hetrta.Report
	if err := json.Unmarshal(out.Reports[1], &errRep); err != nil {
		t.Fatal(err)
	}
	if errRep.Err == "" || !strings.Contains(errRep.Err, "unknown kind") {
		t.Fatalf("slot 1 error = %q, want the decode error", errRep.Err)
	}
	st := getStats(t, base)
	if st.Executions != 1 {
		t.Fatalf("executions = %d, want 1 (duplicate coalesced, bad slot never analyzed)", st.Executions)
	}
	if st.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", st.Coalesced)
	}
}

func TestBadRequests(t *testing.T) {
	base := startDaemon(t)

	resp, _ := post(t, base+"/v1/analyze", []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid JSON = %d, want 400", resp.StatusCode)
	}

	// Cyclic graphs fail analysis, not decoding.
	cyclic := []byte(`{"nodes":[{"wcet":1},{"wcet":2}],"edges":[[0,1],[1,0]]}`)
	resp, data := post(t, base+"/v1/analyze", cyclic)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("cyclic graph = %d (%s), want 422", resp.StatusCode, data)
	}

	r, err := http.Get(base + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET analyze = %d, want 405", r.StatusCode)
	}
}

// hardTask returns a task whose exact search would run far longer than the
// test timeouts, so only cancellation can end it quickly.
func hardTask(t *testing.T) []byte {
	t.Helper()
	// Small(24,28) seed 1 on an m=2 platform: the branch-and-bound needs
	// well beyond 3s uncancelled (probed), so tests pairing this task with
	// "-platform 2+1" only finish quickly if cancellation works.
	g, _, _, err := taskgen.MustNew(taskgen.Small(24, 28), 1).HetTask(0.15)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRequestTimeoutMapsToGatewayTimeout: the per-request timeout must
// cancel the pipeline (inside the exact oracle) and map to 504.
func TestRequestTimeoutMapsToGatewayTimeout(t *testing.T) {
	base := startDaemon(t, "-platform", "2+1",
		"-exact", "-budget", fmt.Sprint(int64(1)<<40), "-exact-poll", "64",
		"-request-timeout", "100ms")
	startedAt := time.Now()
	resp, data := post(t, base+"/v1/analyze", hardTask(t))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, data)
	}
	if elapsed := time.Since(startedAt); elapsed > 10*time.Second {
		t.Fatalf("timeout took %v, cancellation did not reach the oracle", elapsed)
	}
	// The timed-out analysis must not have been cached.
	if st := getStats(t, base); st.Entries != 0 {
		t.Fatalf("timed-out analysis cached: %+v", st)
	}
}

// TestCancelledClientAbortsExactOracle: dropping the HTTP request must
// propagate through the request context into the exact oracle's poll loop;
// /statsz shows the in-flight execution draining promptly even though its
// budget allowed a far longer search.
func TestCancelledClientAbortsExactOracle(t *testing.T) {
	base := startDaemon(t, "-platform", "2+1",
		"-exact", "-budget", fmt.Sprint(int64(1)<<40), "-exact-poll", "64",
		"-request-timeout", "10m")

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/analyze", bytes.NewReader(hardTask(t)))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request completed with %d before cancellation", resp.StatusCode)
		}
		errCh <- err
	}()

	// Let the request reach the oracle, then hang up.
	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, base).InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the analyzer")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-errCh; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client err = %v, want context cancellation", err)
	}

	// The server-side execution must abort within the poll interval, not
	// run out its 2^40-expansion budget.
	deadline = time.Now().Add(10 * time.Second)
	for {
		st := getStats(t, base)
		if st.InFlight == 0 {
			if st.Entries != 0 {
				t.Fatalf("aborted analysis was cached: %+v", st)
			}
			if st.Failures == 0 {
				t.Fatalf("abort not recorded as failure: %+v", st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("oracle still running after client hang-up: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-platform", "bogus"},
		{"-bounds", "nope"},
		{"-bounds", ""},
		{"-budget", "100"},    // requires -exact
		{"-exact-poll", "64"}, // requires -exact
		{"-exact", "-budget", "-1"},
		{"-exact", "-exact-poll", "-1"},
		{"-exact-slice", "50ms"}, // requires -exact
		{"-exact", "-exact-slice", "-1s"},
		{"-exact-parallel", "4"}, // requires -exact
		{"-exact", "-exact-parallel", "-1"},
	} {
		out := &syncBuffer{}
		if code := run(context.Background(), append([]string{"-addr", "127.0.0.1:0"}, args...), out, out); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// admitBody renders an /v1/admit request; reorder permutes both the task
// order and the member graphs' node insertion order, producing an
// isomorphic taskset with the same canonical fingerprint.
func admitBody(t *testing.T, reorder bool) []byte {
	t.Helper()
	type task struct {
		Graph    json.RawMessage `json:"graph"`
		Period   int64           `json:"period"`
		Deadline int64           `json:"deadline"`
		Jitter   int64           `json:"jitter,omitempty"`
	}
	g1, g2 := chainTask(t), taskJSON(t, func(g *hetrta.Graph) {
		a := g.AddNode("a", 4, hetrta.Host)
		b := g.AddNode("b", 6, hetrta.Host)
		g.MustAddEdge(a, b)
	})
	if reorder {
		g1 = relabeledChainTask(t)
	}
	tasks := []task{
		{Graph: g1, Period: 60, Deadline: 50},
		{Graph: g2, Period: 80, Deadline: 70, Jitter: 3},
	}
	if reorder {
		tasks[0], tasks[1] = tasks[1], tasks[0]
	}
	b, err := json.Marshal(map[string]any{"tasks": tasks})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAdmitEndToEnd is the admission acceptance path: POST /v1/admit, then
// POST a permuted-but-isomorphic taskset and verify — via /statsz hit
// counters and X-Cache — that it was served the byte-identical cached
// response.
func TestAdmitEndToEnd(t *testing.T) {
	base := startDaemon(t, "-platform", "4+1", "-bounds", "rhom,rhet,typed-rhom")

	resp1, body1 := post(t, base+"/v1/admit", admitBody(t, false))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first admit: %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first admit X-Cache = %q, want miss", got)
	}
	fp1 := resp1.Header.Get("X-Taskset-Fingerprint")
	if fp1 == "" {
		t.Fatal("missing X-Taskset-Fingerprint")
	}
	var rep struct {
		Admitted bool `json:"admitted"`
		Policies []struct {
			Policy   string `json:"policy"`
			Admitted bool   `json:"admitted"`
		} `json:"policies"`
	}
	if err := json.Unmarshal(body1, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Admitted || len(rep.Policies) != 2 {
		t.Fatalf("unexpected admit report: %s", body1)
	}

	before := getStats(t, base)
	resp2, body2 := post(t, base+"/v1/admit", admitBody(t, true))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second admit: %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("permuted admit X-Cache = %q, want hit", got)
	}
	if got := resp2.Header.Get("X-Taskset-Fingerprint"); got != fp1 {
		t.Fatalf("fingerprint changed across permutation: %q vs %q", got, fp1)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached admit response not byte-identical:\n%s\n%s", body1, body2)
	}
	after := getStats(t, base)
	if after.Hits != before.Hits+1 {
		t.Fatalf("hit counter did not advance: before %+v after %+v", before, after)
	}
}

// TestAdmitBadRequests covers the admission failure paths: malformed JSON,
// oversized tasksets, and model-invalid tasksets.
func TestAdmitBadRequests(t *testing.T) {
	base := startDaemon(t, "-max-batch", "2")

	resp, body := post(t, base+"/v1/admit", []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d: %s", resp.StatusCode, body)
	}

	big := admitRequest{Tasks: make([]admitTask, 3)}
	bigBody, err := json.Marshal(big)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, base+"/v1/admit", bigBody)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized taskset: %d: %s", resp.StatusCode, body)
	}

	// Deadline > period: decodes fine, fails model validation → 400 (an
	// input-shaped error, named after the offending field).
	bad, err := json.Marshal(map[string]any{"tasks": []map[string]any{
		{"graph": json.RawMessage(chainTask(t)), "period": 10, "deadline": 20},
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, base+"/v1/admit", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid model: %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "constrained deadline") {
		t.Fatalf("unexpected error body: %s", body)
	}

	// Non-positive period: previously flowed garbage into the policy
	// iterations; now a 400 naming the field.
	badPeriod, err := json.Marshal(map[string]any{"tasks": []map[string]any{
		{"graph": json.RawMessage(chainTask(t)), "period": 0, "deadline": 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, base+"/v1/admit", badPeriod)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-positive period: %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "period") {
		t.Fatalf("unexpected error body: %s", body)
	}

	// Negative jitter → 400 naming the field.
	badJitter, err := json.Marshal(map[string]any{"tasks": []map[string]any{
		{"graph": json.RawMessage(chainTask(t)), "period": 10, "deadline": 10, "jitter": -1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, base+"/v1/admit", badJitter)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative jitter: %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "jitter") {
		t.Fatalf("unexpected error body: %s", body)
	}
}
