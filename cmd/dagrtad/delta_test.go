// End-to-end tests for POST /v1/admit/delta (incremental admission) and
// the writeAnalysisError classification fix: infrastructure failures are
// 500, analysis failures are 422, input-shaped failures 400, cold delta
// bases 404.
package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	hetrta "repro"
	"repro/internal/resilience/faultinject"
)

// The three tasks the delta tests shuffle. task1 and task2 are exactly the
// members of admitBody(t, false); task3 is the newcomer. Building them as
// model objects (not JSON) lets the test compute wire digests with the
// same taskset.Digest the server uses.
func deltaTask1() hetrta.SporadicTask {
	g := hetrta.NewGraph()
	load := g.AddNode("load", 2, hetrta.Host)
	kern := g.AddNode("kernel", 8, hetrta.Offload)
	post := g.AddNode("post", 3, hetrta.Host)
	g.MustAddEdge(load, kern)
	g.MustAddEdge(kern, post)
	return hetrta.SporadicTask{G: g, Period: 60, Deadline: 50}
}

func deltaTask2() hetrta.SporadicTask {
	g := hetrta.NewGraph()
	a := g.AddNode("a", 4, hetrta.Host)
	b := g.AddNode("b", 6, hetrta.Host)
	g.MustAddEdge(a, b)
	return hetrta.SporadicTask{G: g, Period: 80, Deadline: 70, Jitter: 3}
}

func deltaTask3() hetrta.SporadicTask {
	g := hetrta.NewGraph()
	in := g.AddNode("in", 3, hetrta.Host)
	kern := g.AddNode("kern", 5, hetrta.Offload)
	out := g.AddNode("out", 2, hetrta.Host)
	g.MustAddEdge(in, kern)
	g.MustAddEdge(kern, out)
	return hetrta.SporadicTask{G: g, Period: 90, Deadline: 80}
}

func wireTask(t *testing.T, st hetrta.SporadicTask) map[string]any {
	t.Helper()
	raw, err := json.Marshal(st.G)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]any{"graph": json.RawMessage(raw), "period": st.Period, "deadline": st.Deadline}
	if st.Jitter != 0 {
		m["jitter"] = st.Jitter
	}
	return m
}

func wholeSetBody(t *testing.T, tasks ...hetrta.SporadicTask) []byte {
	t.Helper()
	wire := make([]map[string]any, len(tasks))
	for i, st := range tasks {
		wire[i] = wireTask(t, st)
	}
	b, err := json.Marshal(map[string]any{"tasks": wire})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func deltaBody(t *testing.T, base string, body map[string]any) []byte {
	t.Helper()
	body["base"] = base
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAdmitDeltaEndToEnd is the delta acceptance path: warm a base via
// /v1/admit, apply add+remove via /v1/admit/delta, and verify — against a
// whole-set /v1/admit of the resulting set, /statsz eval counters, and a
// golden file — that the delta response is the byte-identical full
// AdmitReport of the resulting taskset.
func TestAdmitDeltaEndToEnd(t *testing.T) {
	base := startDaemon(t, "-platform", "4+1", "-bounds", "rhom,rhet,typed-rhom")
	t1, t2, t3 := deltaTask1(), deltaTask2(), deltaTask3()

	// Warm the base set {t1, t2}.
	resp, body := post(t, base+"/v1/admit", admitBody(t, false))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base admit: %d: %s", resp.StatusCode, body)
	}
	baseFP := resp.Header.Get("X-Taskset-Fingerprint")
	if baseFP == "" {
		t.Fatal("missing base fingerprint")
	}

	// Delta: remove t1, add t3 → resulting set {t2, t3}.
	before := getStats(t, base)
	dresp, dbody := post(t, base+"/v1/admit/delta", deltaBody(t, baseFP, map[string]any{
		"add":    []map[string]any{wireTask(t, t3)},
		"remove": []string{t1.Digest().String()},
	}))
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delta admit: %d: %s", dresp.StatusCode, dbody)
	}
	if got := dresp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("delta X-Cache = %q, want miss", got)
	}
	deltaFP := dresp.Header.Get("X-Taskset-Fingerprint")
	if deltaFP == "" || deltaFP == baseFP {
		t.Fatalf("delta fingerprint %q, want a new resulting-set fingerprint", deltaFP)
	}

	// t2's eval must have been reused, t3's freshly prepared.
	after := getStats(t, base)
	if after.EvalHits != before.EvalHits+1 {
		t.Fatalf("delta did not reuse the surviving task's eval: before %+v after %+v", before, after)
	}
	if after.EvalMisses != before.EvalMisses+1 {
		t.Fatalf("delta should prepare exactly the added task: before %+v after %+v", before, after)
	}

	// Byte-identity: whole-set admit of {t2, t3} hits the delta's cache
	// entry and serves the same bytes under the same fingerprint.
	fresp, fbody := post(t, base+"/v1/admit", wholeSetBody(t, t2, t3))
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("whole-set admit of resulting set: %d: %s", fresp.StatusCode, fbody)
	}
	if got := fresp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("whole-set admit after delta X-Cache = %q, want hit", got)
	}
	if got := fresp.Header.Get("X-Taskset-Fingerprint"); got != deltaFP {
		t.Fatalf("fingerprints differ: delta %q vs whole-set %q", deltaFP, got)
	}
	if !bytes.Equal(dbody, fbody) {
		t.Fatalf("delta response not byte-identical to whole-set admit:\n%s\n%s", dbody, fbody)
	}

	// An empty delta against the warmed result is a pure cache hit.
	eresp, ebody := post(t, base+"/v1/admit/delta", deltaBody(t, deltaFP, map[string]any{}))
	if eresp.StatusCode != http.StatusOK || eresp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("empty delta: %d X-Cache=%q", eresp.StatusCode, eresp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(ebody, dbody) {
		t.Fatal("empty delta served different bytes")
	}

	// Golden pin: the delta response is a full AdmitReport, schema and all.
	golden := filepath.Join("testdata", "golden", "admit_delta.json")
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, dbody, "", "  "); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(golden, pretty.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(bytes.TrimSpace(want), bytes.TrimSpace(pretty.Bytes())) {
		t.Fatalf("delta response drifted from golden:\n%s", pretty.Bytes())
	}
}

// TestAdmitDeltaColdBase: a fingerprint the daemon has never admitted (or
// has evicted) is a 404 telling the client to fall back to a full admit —
// not a silent full admission and not a 422.
func TestAdmitDeltaColdBase(t *testing.T) {
	base := startDaemon(t)
	cold := strings.Repeat("ab", 32)
	resp, body := post(t, base+"/v1/admit/delta", deltaBody(t, cold, map[string]any{
		"add": []map[string]any{wireTask(t, deltaTask3())},
	}))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold base: %d (%s), want 404", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "fall back") {
		t.Fatalf("cold-base body gives no fallback guidance: %s", body)
	}
}

// TestAdmitDeltaBadRequests covers the delta decode and validation paths.
func TestAdmitDeltaBadRequests(t *testing.T) {
	base := startDaemon(t, "-max-batch", "2")

	resp, body := post(t, base+"/v1/admit/delta", []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d: %s", resp.StatusCode, body)
	}

	resp, body = post(t, base+"/v1/admit/delta", deltaBody(t, "zzzz", map[string]any{}))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "base") {
		t.Fatalf("bad base fingerprint: %d: %s", resp.StatusCode, body)
	}

	// Warm a base, then reference a digest that is not in it → 400 naming
	// the digest, since the delta (not the infrastructure) is wrong.
	resp, _ = post(t, base+"/v1/admit", admitBody(t, false))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base admit: %d", resp.StatusCode)
	}
	fp := resp.Header.Get("X-Taskset-Fingerprint")
	resp, body = post(t, base+"/v1/admit/delta", deltaBody(t, fp, map[string]any{
		"remove": []string{deltaTask3().Digest().String()},
	}))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "not in base set") {
		t.Fatalf("unknown remove digest: %d: %s", resp.StatusCode, body)
	}

	// Edit count is bounded by -max-batch like whole-set admission.
	resp, body = post(t, base+"/v1/admit/delta", deltaBody(t, fp, map[string]any{
		"add": []map[string]any{wireTask(t, deltaTask3()), wireTask(t, deltaTask3()), wireTask(t, deltaTask3())},
	}))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "limit") {
		t.Fatalf("oversized delta: %d: %s", resp.StatusCode, body)
	}
}

// TestErrorClassification is the writeAnalysisError regression: an
// infrastructure failure inside the execution path (injected at the Exec
// seam) must surface as 500, while a genuine analysis failure of a
// well-formed input stays 422. Before the fix, both collapsed to 422.
func TestErrorClassification(t *testing.T) {
	inj := faultinject.New(faultinject.Rule{Point: faultinject.Exec, Count: 1, Err: faultinject.ErrInjected})
	base := startDaemonInj(t, inj)

	resp, body := post(t, base+"/v1/analyze", chainTask(t))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected infrastructure fault: %d (%s), want 500", resp.StatusCode, body)
	}

	// The rule is exhausted: the same input now analyzes fine, proving the
	// 500 was the injected fault and the failure was never cached.
	resp, body = post(t, base+"/v1/analyze", chainTask(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after fault exhausted: %d: %s", resp.StatusCode, body)
	}

	// Contrast: an analysis failure of a decodable input is the client's
	// 422, not a 500.
	cyclic := []byte(`{"nodes":[{"wcet":1},{"wcet":2}],"edges":[[0,1],[1,0]]}`)
	resp, body = post(t, base+"/v1/analyze", cyclic)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("analysis failure: %d (%s), want 422", resp.StatusCode, body)
	}
}
