package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/exact"
	"repro/internal/sched"
	"repro/internal/taskgen"
)

// TestParallelExactBeatsSerialTimeout: the point of -exact-parallel is
// latency — a hard instance that blows a serial daemon's -request-timeout
// must come back 200 from a parallel one under the same timeout. Wall-clock
// speedup needs real cores, so the test calibrates in-process first and
// skips (rather than flakes) on hosts where the parallel solver cannot
// establish the margin: serial must NOT finish within the timeout, parallel
// must finish within a third of it.
func TestParallelExactBeatsSerialTimeout(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("needs ≥ 4 CPUs for wall-clock speedup, have %d", runtime.NumCPU())
	}
	g, _, _, err := taskgen.MustNew(taskgen.Small(24, 28), 1).HetTask(0.15)
	if err != nil {
		t.Fatal(err)
	}
	const timeout = 1500 * time.Millisecond

	// Serial probe: the instance must genuinely exceed the timeout on this
	// hardware, or the 504 half of the claim is vacuous.
	sctx, scancel := context.WithTimeout(context.Background(), timeout)
	defer scancel()
	if _, err := exact.MinMakespan(sctx, g, sched.Hetero(2), exact.Options{MaxExpansions: 1 << 40, Parallelism: 1}); err == nil {
		t.Skip("instance solved serially within the timeout on this host; nothing to beat")
	}

	// Parallel probe: require a 3x margin below the timeout so the daemon
	// round-trip (HTTP, bounds, simulation) cannot push it over.
	pctx, pcancel := context.WithTimeout(context.Background(), timeout/3)
	defer pcancel()
	if _, err := exact.MinMakespan(pctx, g, sched.Hetero(2), exact.Options{MaxExpansions: 1 << 40, Parallelism: 4}); err != nil {
		t.Skipf("parallel solver cannot establish the wall-clock margin on this host: %v", err)
	}

	serial := startDaemon(t, "-platform", "2+1",
		"-exact", "-budget", fmt.Sprint(int64(1)<<40), "-exact-parallel", "1",
		"-request-timeout", timeout.String())
	resp, data := post(t, serial+"/v1/analyze", hardTask(t))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("serial daemon: status = %d (%s), want 504", resp.StatusCode, data)
	}

	parallel := startDaemon(t, "-platform", "2+1",
		"-exact", "-budget", fmt.Sprint(int64(1)<<40), "-exact-parallel", "4",
		"-request-timeout", timeout.String())
	resp, data = post(t, parallel+"/v1/analyze", hardTask(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parallel daemon: status = %d (%s), want 200 inside the timeout the serial daemon blew", resp.StatusCode, data)
	}
	if !bytes.Contains(data, []byte(`"exact"`)) {
		t.Fatalf("parallel report lacks the exact stage: %s", data)
	}
}

// TestCancelledClientAbortsParallelExactOracle: client hang-up must stop
// all four search workers, not just the one that happens to poll — the
// shared expansion counter makes the poll window global, so the whole pool
// drains within it. This is the parallel twin of
// TestCancelledClientAbortsExactOracle and is meaningful even on one CPU.
func TestCancelledClientAbortsParallelExactOracle(t *testing.T) {
	base := startDaemon(t, "-platform", "2+1",
		"-exact", "-budget", fmt.Sprint(int64(1)<<40), "-exact-poll", "64",
		"-exact-parallel", "4", "-request-timeout", "10m")

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/analyze", bytes.NewReader(hardTask(t)))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request completed with %d before cancellation", resp.StatusCode)
		}
		errCh <- err
	}()

	// Let the request reach the oracle, then hang up.
	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, base).InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the analyzer")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-errCh; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client err = %v, want context cancellation", err)
	}

	// Every worker must abort within the shared poll window: in-flight
	// drains to zero long before the 2^40 budget could.
	deadline = time.Now().Add(10 * time.Second)
	for {
		st := getStats(t, base)
		if st.InFlight == 0 {
			if st.Entries != 0 {
				t.Fatalf("aborted analysis was cached: %+v", st)
			}
			if st.Failures == 0 {
				t.Fatalf("abort not recorded as failure: %+v", st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("parallel oracle still running after client hang-up: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
