package main

// GET /metrics: the /statsz counters re-shaped into the Prometheus text
// exposition format (version 0.0.4), hand-rolled on the stdlib like the
// rest of the repo — a scraper needs `# TYPE` lines and `name{labels}
// value` samples, not a client library. Counter semantics follow the
// Stats() contract: each sample is individually monotonic, but one
// scrape is not an atomic snapshot across families.

import (
	"net/http"
	"strconv"
	"strings"
)

// promBuf accumulates one exposition. Families must be emitted with
// their HELP/TYPE header before any sample, and each family exactly
// once — the strict parser in the e2e test enforces both.
type promBuf struct {
	b strings.Builder
}

// family writes the # HELP / # TYPE header for a metric family.
func (p *promBuf) family(name, typ, help string) {
	p.b.WriteString("# HELP ")
	p.b.WriteString(name)
	p.b.WriteByte(' ')
	p.b.WriteString(help)
	p.b.WriteString("\n# TYPE ")
	p.b.WriteString(name)
	p.b.WriteByte(' ')
	p.b.WriteString(typ)
	p.b.WriteByte('\n')
}

// sample writes one `name{labels} value` line; labels may be empty.
func (p *promBuf) sample(name, labels string, value string) {
	p.b.WriteString(name)
	if labels != "" {
		p.b.WriteByte('{')
		p.b.WriteString(labels)
		p.b.WriteByte('}')
	}
	p.b.WriteByte(' ')
	p.b.WriteString(value)
	p.b.WriteByte('\n')
}

// counter emits a single-sample counter family.
func (p *promBuf) counter(name, help string, v uint64) {
	p.family(name, "counter", help)
	p.sample(name, "", strconv.FormatUint(v, 10))
}

// gauge emits a single-sample gauge family.
func (p *promBuf) gauge(name, help string, v int64) {
	p.family(name, "gauge", help)
	p.sample(name, "", strconv.FormatInt(v, 10))
}

func boolGauge(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// renderMetrics formats one stats snapshot as Prometheus text.
func renderMetrics(st statsResponse) string {
	var p promBuf

	p.counter("dagrtad_requests_total", "Requests served (a batch of n graphs counts n).", st.Requests)
	p.counter("dagrtad_cache_hits_total", "Report-cache hits (memory or store tier).", st.Hits)
	p.counter("dagrtad_cache_misses_total", "Report-cache misses that led an execution.", st.Misses)
	p.counter("dagrtad_cache_shared_total", "Requests that joined another request's in-flight execution.", st.Coalesced)
	p.counter("dagrtad_cache_evictions_total", "LRU evictions across all cache shards.", st.Evictions)
	p.counter("dagrtad_executions_total", "Analyzer runs (one per distinct missed key).", st.Executions)
	p.counter("dagrtad_failures_total", "Analyses that returned an error (never cached).", st.Failures)
	p.counter("dagrtad_degraded_total", "Degraded (bounds-only) results served.", st.Degraded)
	p.counter("dagrtad_eval_hits_total", "Per-task eval-cache hits on the admission path.", st.EvalHits)
	p.counter("dagrtad_eval_misses_total", "Per-task eval-cache misses on the admission path.", st.EvalMisses)
	p.counter("dagrtad_eval_failures_total", "Per-task eval preparations that failed.", st.EvalFailures)
	p.counter("dagrtad_step_hits_total", "Global-policy fixpoint memo hits.", st.StepHits)
	p.counter("dagrtad_step_misses_total", "Global-policy fixpoint memo misses.", st.StepMisses)
	p.counter("dagrtad_recovered_panics_total", "Handler panics recovered by the HTTP layer.", st.RecoveredPanics)
	p.counter("dagrtad_response_write_errors_total", "Response bodies that failed to write out.", st.ResponseWriteErrors)

	p.gauge("dagrtad_in_flight", "Analyses executing right now.", st.InFlight)
	p.gauge("dagrtad_cache_entries", "Report-cache occupancy in entries.", int64(st.Entries))
	p.gauge("dagrtad_cache_capacity", "Report-cache capacity in entries.", int64(st.Capacity))
	p.gauge("dagrtad_step_entries", "Global-policy fixpoint memo occupancy.", int64(st.StepEntries))
	p.gauge("dagrtad_draining", "1 while graceful shutdown is draining requests.", boolGauge(st.Draining))

	p.family("dagrtad_cache_shard_entries", "gauge", "Per-shard report-cache occupancy.")
	for i, n := range st.ShardEntries {
		p.sample("dagrtad_cache_shard_entries", `shard="`+strconv.Itoa(i)+`"`, strconv.Itoa(n))
	}

	if o := st.Overload; o != nil {
		p.counter("dagrtad_overload_admitted_total", "Limiter acquisitions that succeeded.", o.Admitted)
		p.counter("dagrtad_overload_queued_total", "Limiter acquisitions that waited for a slot.", o.Queued)
		p.counter("dagrtad_overload_shed_total", "Requests shed with 429 by the limiter.", o.Shed)
		p.gauge("dagrtad_overload_in_use", "Limiter cost units currently held.", o.InUse)
		p.gauge("dagrtad_overload_capacity", "Limiter cost-unit capacity.", o.Capacity)
		p.gauge("dagrtad_overload_queue_depth", "Acquisitions currently waiting for a slot.", int64(o.QueueDepth))
	}
	if b := st.Breaker; b != nil {
		p.counter("dagrtad_breaker_opens_total", "Circuit-breaker closed-to-open transitions.", b.Opens)
		p.counter("dagrtad_breaker_probes_total", "Half-open probes let through while open.", b.Probes)
		p.counter("dagrtad_breaker_rejected_total", "Requests routed to the degraded path by an open breaker.", b.Rejected)
		p.gauge("dagrtad_breaker_open", "1 while the circuit breaker is open.", boolGauge(b.State == "open"))
	}
	if h := st.HardInstances; h != nil {
		p.counter("dagrtad_hard_added_total", "Fingerprints marked as known-hard.", h.Added)
		p.counter("dagrtad_hard_removed_total", "Known-hard fingerprints upgraded by a full success.", h.Removed)
		p.counter("dagrtad_hard_probes_total", "Known-hard cache probes.", h.Probes)
		p.gauge("dagrtad_hard_entries", "Known-hard fingerprints currently cached.", int64(h.Entries))
	}
	if s := st.Store; s != nil {
		p.counter("dagrtad_store_records_loaded_total", "Good records scanned from the log at boot.", s.RecordsLoaded)
		p.counter("dagrtad_store_bytes_loaded_total", "Bytes of good records scanned at boot.", s.BytesLoaded)
		p.counter("dagrtad_store_tail_truncations_total", "Crash-truncated log tails dropped at boot.", s.TailTruncations)
		p.counter("dagrtad_store_invalidations_total", "Whole-log discards from a generation mismatch.", s.Invalidations)
		p.counter("dagrtad_store_appends_total", "Records durably appended to the log.", s.Appends)
		p.counter("dagrtad_store_append_errors_total", "Log append failures (store goes read-only after the first).", s.AppendErrors)
		p.counter("dagrtad_store_dropped_total", "Appends shed by the bounded write-behind queue.", s.Dropped)
		p.counter("dagrtad_store_warm_loaded_total", "Entries decoded into the cache by the boot warm start.", s.WarmLoaded)
		p.counter("dagrtad_store_warm_hits_total", "Cache misses answered from the store tier without recomputation.", s.WarmHits)
		p.counter("dagrtad_store_decode_errors_total", "Store records that failed service-level decoding.", s.DecodeErrors)
		p.gauge("dagrtad_store_size_bytes", "Current log size in bytes.", s.SizeBytes)
		p.gauge("dagrtad_store_live_keys", "Distinct keys live in the log index.", int64(s.LiveKeys))
	}
	return p.b.String()
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body := renderMetrics(statsResponse{
		Stats:               d.svc.Stats(),
		RecoveredPanics:     d.recovered.Load(),
		ResponseWriteErrors: d.writeErrs.Load(),
		Draining:            d.draining.Load(),
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	d.writeBody(w, []byte(body))
}
