// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 5):
//
//	-fig 6       Figure 6: avg execution time of τ vs τ' (breadth-first sim)
//	-fig 7       Figure 7: Rhom/Rhet pessimism vs exact minimum makespan
//	-fig 8       Figure 8: Theorem 1 scenario occurrence
//	-fig 9       Figure 9: % change of Rhom w.r.t. Rhet
//	-fig tables  the §5 text-quoted summary numbers (crossovers, peaks)
//	-fig naive   §3.2 violation study: sampled schedules vs the naive bound
//	-fig all     everything
//
// -scale quick runs a reduced sweep (minutes); -scale paper reproduces the
// paper's sample sizes (100 DAGs/point, n ∈ [100,250]; Figure 7 budgeted).
// Tables print to stdout; -csv DIR additionally writes CSV files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/table"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "which figure to regenerate: 6|7|8|9|tables|naive|all")
		scale  = flag.String("scale", "quick", "experiment scale: quick, medium, or paper")
		seed   = flag.Int64("seed", 2018, "random seed")
		csvDir = flag.String("csv", "", "directory for CSV output (optional)")
		ablate = flag.Bool("policies", false, "with -fig 6: also run the LIFO policy ablation")
	)
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.Quick(*seed)
	case "medium":
		cfg = experiments.Medium(*seed)
	case "paper":
		cfg = experiments.Default(*seed)
		cfg.ExactBudget = 2_000_000
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	runner := &runner{csvDir: *csvDir}
	want := func(f string) bool { return *fig == "all" || *fig == f }

	var fig9 *experiments.Fig9Result
	if want("6") {
		res, err := experiments.Fig6(cfg, nil)
		check(err)
		runner.emit("fig6", res.Table())
		runner.emit("fig6_summary", res.SummaryTable())
		if *ablate {
			lifo, err := experiments.Fig6(cfg, sched.LIFO)
			check(err)
			runner.emit("fig6_lifo_ablation", lifo.Table())
		}
	}
	if want("7") {
		f7cfg := cfg
		if *scale == "quick" {
			res, err := experiments.Fig7(f7cfg, []experiments.Fig7Panel{
				{M: 2, NMin: 3, NMax: 20},
				{M: 8, NMin: 20, NMax: 40},
			})
			check(err)
			for i, t := range res.Table() {
				runner.emit(fmt.Sprintf("fig7_panel%c", 'a'+i), t)
			}
		} else {
			res, err := experiments.Fig7(f7cfg, experiments.PaperFig7Panels())
			check(err)
			for i, t := range res.Table() {
				runner.emit(fmt.Sprintf("fig7_panel%c", 'a'+i), t)
			}
		}
	}
	if want("8") {
		res, err := experiments.Fig8(cfg)
		check(err)
		for i, t := range res.Table() {
			runner.emit(fmt.Sprintf("fig8_m%d", res.Series[i].M), t)
		}
		runner.emit("fig8_summary", res.SummaryTable())
	}
	if want("9") || want("tables") {
		var err error
		fig9, err = experiments.Fig9(cfg)
		check(err)
		if want("9") {
			runner.emit("fig9", fig9.Table())
		}
		runner.emit("fig9_summary", fig9.SummaryTable())
	}
	if want("naive") {
		res, err := experiments.Naive(cfg, 32)
		check(err)
		for i, t := range res.Table() {
			runner.emit(fmt.Sprintf("naive_m%d", res.Series[i].M), t)
		}
	}
	if runner.count == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing matched -fig %q\n", *fig)
		os.Exit(2)
	}
}

type runner struct {
	csvDir string
	count  int
}

func (r *runner) emit(name string, t *table.Table) {
	r.count++
	if err := t.WriteText(os.Stdout); err != nil {
		check(err)
	}
	fmt.Println()
	if r.csvDir == "" {
		return
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		check(err)
	}
	f, err := os.Create(filepath.Join(r.csvDir, name+".csv"))
	check(err)
	defer f.Close()
	check(t.WriteCSV(f))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
