// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 5):
//
//	-fig 6       Figure 6: avg execution time of τ vs τ' (breadth-first sim)
//	-fig 7       Figure 7: Rhom/Rhet pessimism vs exact minimum makespan
//	-fig 8       Figure 8: Theorem 1 scenario occurrence
//	-fig 9       Figure 9: % change of Rhom w.r.t. Rhet
//	-fig tables  the §5 text-quoted summary numbers (crossovers, peaks)
//	-fig naive   §3.2 violation study: sampled schedules vs the naive bound
//	-fig multi   beyond the paper: offload count × device classes sweep
//	             (generate → transform-all → typed bound → simulate → exact)
//	-fig taskset acceptance ratios of sporadic tasksets (utilization grid ×
//	             task count × offload mix, federated + global policies)
//	-fig churn   admission churn: delta-admission latency vs from-scratch
//	             re-analysis under task arrivals/departures, with report
//	             byte-identity checked at every event
//	-fig all     everything
//
// -scale quick runs a reduced sweep (minutes); -scale paper reproduces the
// paper's sample sizes (100 DAGs/point, n ∈ [100,250]; Figure 7 budgeted).
// -parallel fans the per-(platform, COff%) points out on a worker pool —
// results are bit-identical at any parallelism. Tables print to stdout;
// -csv DIR additionally writes CSV files.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/table"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig      = fs.String("fig", "all", "which figure to regenerate: 6|7|8|9|tables|naive|multi|taskset|churn|all")
		scale    = fs.String("scale", "quick", "experiment scale: quick, medium, or paper")
		seed     = fs.Int64("seed", 2018, "random seed")
		csvDir   = fs.String("csv", "", "directory for CSV output (optional)")
		ablate   = fs.Bool("policies", false, "with -fig 6: also run the LIFO policy ablation")
		parallel = fs.Int("parallel", 0, "worker-pool size for the sweep points (0 = all CPUs, 1 = serial)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.Quick(*seed)
	case "medium":
		cfg = experiments.Medium(*seed)
	case "paper":
		cfg = experiments.Default(*seed)
		cfg.ExactBudget = 2_000_000
	default:
		fmt.Fprintf(stderr, "experiments: unknown scale %q\n", *scale)
		return 2
	}
	cfg.Parallelism = *parallel

	ctx := context.Background()
	runner := &runner{csvDir: *csvDir, stdout: stdout, stderr: stderr}
	want := func(f string) bool { return *fig == "all" || *fig == f }

	if want("6") {
		res, err := experiments.Fig6(ctx, cfg, nil)
		if !runner.check(err) {
			return 1
		}
		runner.emit("fig6", res.Table())
		runner.emit("fig6_summary", res.SummaryTable())
		if *ablate {
			lifo, err := experiments.Fig6(ctx, cfg, sched.LIFO)
			if !runner.check(err) {
				return 1
			}
			runner.emit("fig6_lifo_ablation", lifo.Table())
		}
	}
	if want("7") {
		panels := experiments.PaperFig7Panels()
		if *scale == "quick" {
			panels = []experiments.Fig7Panel{
				{Platform: platform.Hetero(2), NMin: 3, NMax: 20},
				{Platform: platform.Hetero(8), NMin: 20, NMax: 40},
			}
		}
		res, err := experiments.Fig7(ctx, cfg, panels)
		if !runner.check(err) {
			return 1
		}
		for i, t := range res.Table() {
			runner.emit(fmt.Sprintf("fig7_panel%c", 'a'+i), t)
		}
	}
	if want("8") {
		res, err := experiments.Fig8(ctx, cfg)
		if !runner.check(err) {
			return 1
		}
		for i, t := range res.Table() {
			runner.emit(fmt.Sprintf("fig8_m%d", res.Series[i].M), t)
		}
		runner.emit("fig8_summary", res.SummaryTable())
	}
	if want("9") || want("tables") {
		fig9, err := experiments.Fig9(ctx, cfg)
		if !runner.check(err) {
			return 1
		}
		if want("9") {
			runner.emit("fig9", fig9.Table())
		}
		runner.emit("fig9_summary", fig9.SummaryTable())
	}
	if want("naive") {
		res, err := experiments.Naive(ctx, cfg, 32)
		if !runner.check(err) {
			return 1
		}
		for i, t := range res.Table() {
			runner.emit(fmt.Sprintf("naive_m%d", res.Series[i].M), t)
		}
	}
	if want("multi") {
		mcfg := experiments.DefaultMulti(*seed)
		if *scale == "quick" {
			mcfg = experiments.QuickMulti(*seed)
		}
		mcfg.Parallelism = *parallel
		res, err := experiments.MultiSweep(ctx, mcfg)
		if !runner.check(err) {
			return 1
		}
		runner.emit("multi_sweep", res.Table())
	}
	if want("taskset") {
		tcfg := experiments.DefaultTaskset(*seed)
		if *scale == "quick" {
			tcfg = experiments.QuickTaskset(*seed)
		}
		tcfg.Parallelism = *parallel
		res, err := experiments.TasksetSweep(ctx, tcfg)
		if !runner.check(err) {
			return 1
		}
		runner.emit("taskset_acceptance", res.Table())
	}
	if want("churn") {
		ccfg := experiments.DefaultChurn(*seed)
		if *scale == "quick" {
			ccfg = experiments.QuickChurn(*seed)
		}
		res, err := experiments.Churn(ctx, ccfg)
		if !runner.check(err) {
			return 1
		}
		runner.emit("churn_latency", res.Table())
		runner.emit("churn_summary", res.SummaryTable())
	}
	if runner.failed {
		return 1
	}
	if runner.count == 0 {
		fmt.Fprintf(stderr, "experiments: nothing matched -fig %q\n", *fig)
		return 2
	}
	return 0
}

type runner struct {
	csvDir string
	stdout io.Writer
	stderr io.Writer
	count  int
	failed bool
}

func (r *runner) check(err error) bool {
	if err != nil {
		fmt.Fprintln(r.stderr, "experiments:", err)
		r.failed = true
		return false
	}
	return true
}

func (r *runner) emit(name string, t *table.Table) {
	r.count++
	if err := t.WriteText(r.stdout); err != nil {
		r.check(err)
		return
	}
	fmt.Fprintln(r.stdout)
	if r.csvDir == "" {
		return
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		r.check(err)
		return
	}
	f, err := os.Create(filepath.Join(r.csvDir, name+".csv"))
	if !r.check(err) {
		return
	}
	defer f.Close()
	r.check(t.WriteCSV(f))
}
