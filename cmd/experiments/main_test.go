package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig9QuickParallel(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-fig", "9", "-scale", "quick", "-parallel", "2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "Figure 9") || !strings.Contains(s, "crossover") {
		t.Errorf("fig9 tables missing:\n%s", s)
	}
}

func TestRunParallelismIsDeterministic(t *testing.T) {
	gen := func(parallel string) string {
		var out, errb bytes.Buffer
		if code := run([]string{"-fig", "8", "-scale", "quick", "-parallel", parallel}, &out, &errb); code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		return out.String()
	}
	if gen("1") != gen("4") {
		t.Error("-parallel changed the experiment output")
	}
}

func TestRunCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	code := run([]string{"-fig", "tables", "-scale", "quick", "-csv", dir}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig9_summary.csv"))
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if !strings.Contains(string(data), "crossover") {
		t.Errorf("CSV content unexpected: %s", data)
	}
}

func TestRunBadArgs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scale", "galactic"}, &out, &errb); code != 2 {
		t.Errorf("unknown scale: exit %d, want 2", code)
	}
	if code := run([]string{"-fig", "42"}, &out, &errb); code != 2 {
		t.Errorf("unknown fig: exit %d, want 2", code)
	}
	if code := run([]string{"-zzz"}, &out, &errb); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}

func TestRunFigTaskset(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	code := run([]string{"-fig", "taskset", "-scale", "quick", "-parallel", "2", "-csv", dir}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "Acceptance ratio") || !strings.Contains(s, "federated") || !strings.Contains(s, "global") {
		t.Errorf("taskset table missing:\n%s", s)
	}
	if _, err := os.Stat(filepath.Join(dir, "taskset_acceptance.csv")); err != nil {
		t.Errorf("CSV not written: %v", err)
	}
}
