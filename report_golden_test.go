package hetrta

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden files instead of comparing against them:
//
//	go test -run TestReportGolden -update .
var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// The golden files pin the Report JSON wire format the serving layer
// (internal/service, cmd/dagrtad) caches and ships to clients. A diff here
// means the wire format changed: deliberate changes regenerate with
// -update; accidental ones are regressions.
func TestReportGolden(t *testing.T) {
	cases := []struct {
		name  string
		graph func(t *testing.T) *Graph
		opts  []Option
	}{
		{
			// The paper's model: one offloaded region, full pipeline
			// (all bounds, simulation, exact oracle).
			name: "single_offload",
			graph: func(t *testing.T) *Graph {
				g := NewGraph()
				load := g.AddNode("load", 2, Host)
				kern := g.AddNode("kernel", 8, Offload)
				left := g.AddNode("left", 3, Host)
				right := g.AddNode("right", 5, Host)
				post := g.AddNode("post", 3, Host)
				g.MustAddEdge(load, kern)
				g.MustAddEdge(load, left)
				g.MustAddEdge(load, right)
				g.MustAddEdge(kern, post)
				g.MustAddEdge(left, post)
				g.MustAddEdge(right, post)
				return g
			},
			opts: []Option{
				WithPlatform(HeteroPlatform(2)),
				WithBounds(RhomBound(), RhetBound(), TypedRhomBound(), NaiveBound()),
				WithPolicy(BreadthFirst),
				WithExactBudget(0),
			},
		},
		{
			// Two offloaded regions on distinct device classes: the typed
			// multi-class extension, including per-step transform summaries.
			name: "multi_class",
			graph: func(t *testing.T) *Graph {
				g := NewGraph()
				src := g.AddNode("src", 1, Host)
				gpu := g.AddNode("gpuK", 9, Offload) // class 1
				fpga := g.AddNode("fpgaK", 6, Offload)
				mid := g.AddNode("mid", 4, Host)
				sink := g.AddNode("sink", 2, Host)
				g.SetClass(fpga, 2)
				g.MustAddEdge(src, gpu)
				g.MustAddEdge(src, fpga)
				g.MustAddEdge(src, mid)
				g.MustAddEdge(gpu, sink)
				g.MustAddEdge(fpga, sink)
				g.MustAddEdge(mid, sink)
				return g
			},
			opts: []Option{
				WithPlatform(NewPlatform(
					ResourceClass{Name: "host", Count: 4},
					ResourceClass{Name: "gpu", Count: 1},
					ResourceClass{Name: "fpga", Count: 2},
				)),
				WithBounds(RhomBound(), RhetBound(), TypedRhomBound()),
				WithPolicy(BreadthFirst),
			},
		},
		{
			// Graceful degradation: three independent jobs on two host cores
			// make the list-scheduling incumbent (6) beat the root lower
			// bound (ceil(9/2) = 5), so the search must branch — and a
			// 1-expansion budget exhausts immediately, yielding a
			// deterministic degraded report (feasible 6, lower bound 5).
			name: "degraded",
			graph: func(t *testing.T) *Graph {
				g := NewGraph()
				g.AddNode("a", 3, Host)
				g.AddNode("b", 3, Host)
				g.AddNode("c", 3, Host)
				return g
			},
			opts: []Option{
				WithPlatform(HeteroPlatform(2)),
				WithBounds(RhomBound(), NaiveBound()),
				WithExactOptions(ExactOptions{MaxExpansions: 1}),
				WithDegradation(DegradeOptions{}),
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			an, err := NewAnalyzer(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := an.Analyze(context.Background(), tc.graph(t))
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with: go test -run TestReportGolden -update .)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report JSON drifted from %s (regenerate with -update if deliberate)\ngot:\n%s\nwant:\n%s",
					path, got, want)
			}

			// The wire format must round-trip: a decoded report re-encodes
			// to the same bytes (the JSON-visible fields are lossless).
			var back Report
			if err := json.Unmarshal(got, &back); err != nil {
				t.Fatal(err)
			}
			again, err := json.MarshalIndent(&back, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			again = append(again, '\n')
			if !bytes.Equal(got, again) {
				t.Errorf("report JSON does not round-trip:\nfirst:\n%s\nsecond:\n%s", got, again)
			}
		})
	}
}

// TestReportMarshalDeterministic guards the byte-identical-cache-hit
// guarantee: marshaling the same report twice (and re-analyzing the same
// graph) yields identical bytes, including the map-valued bound details.
func TestReportMarshalDeterministic(t *testing.T) {
	an, err := NewAnalyzer(
		WithPlatform(HeteroPlatform(4)),
		WithBounds(RhomBound(), RhetBound(), TypedRhomBound(), NaiveBound()),
	)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Graph {
		g := NewGraph()
		a := g.AddNode("a", 2, Host)
		b := g.AddNode("b", 8, Offload)
		c := g.AddNode("c", 3, Host)
		g.MustAddEdge(a, b)
		g.MustAddEdge(b, c)
		return g
	}
	var prev []byte
	for i := 0; i < 5; i++ {
		rep, err := an.Analyze(context.Background(), mk())
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !bytes.Equal(prev, b) {
			t.Fatalf("marshal %d differs:\n%s\n%s", i, prev, b)
		}
		prev = b
	}
}
