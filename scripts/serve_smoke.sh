#!/bin/sh
# Serve smoke: build the daemon (-race) and the load harness, drive the
# deterministic load mix against a live daemon twice — a cold run, then a
# warm run after restarting the daemon on the same store log — assert the
# warm start actually happened, and gate both runs via benchreport -serve
# against the committed BENCH_SERVE_<n>.json baseline.
#
# Used by `make serve` and the CI serve job. Needs only go + POSIX sh.
set -eu

GO=${GO:-go}
BIN=${BIN:-bin}
ADDR=${ADDR:-127.0.0.1:18573}
WORK=$(mktemp -d)
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT
DAEMON_PID=""

mkdir -p "$BIN"
$GO build -race -o "$BIN/dagrtad" ./cmd/dagrtad
$GO build -o "$BIN/dagrtaload" ./cmd/dagrtaload
$GO build -o "$BIN/benchreport" ./cmd/benchreport

start_daemon() {
    "$BIN/dagrtad" -addr "$ADDR" -platform 4+1 -bounds rhom,rhet,typed-rhom \
        -store "$WORK/cache.log" >"$WORK/daemon.log" 2>&1 &
    DAEMON_PID=$!
    i=0
    while ! grep -q "listening on" "$WORK/daemon.log" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ] || ! kill -0 "$DAEMON_PID" 2>/dev/null; then
            echo "serve_smoke: daemon never came up:" >&2
            cat "$WORK/daemon.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

stop_daemon() {
    # SIGTERM drains gracefully; the deferred store Close flushes the log.
    kill -TERM "$DAEMON_PID"
    wait "$DAEMON_PID" || { echo "serve_smoke: daemon exited non-zero" >&2; exit 1; }
    DAEMON_PID=""
}

# statz_field NAME prints the integer value of "NAME":N from /statsz.
statsz_field() {
    curl -fsS "http://$ADDR/statsz" | grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2
}

echo "== cold run =="
start_daemon
"$BIN/dagrtaload" -base "http://$ADDR" -seed 1 -n 400 -c 4 -hot 12 -bases 3 \
    -out "$WORK/serve_cold.json"
stop_daemon

echo "== warm run (restarted on the same store) =="
start_daemon
warm=$(statsz_field warmLoaded)
if [ -z "$warm" ] || [ "$warm" -eq 0 ]; then
    echo "serve_smoke: restart warm-loaded nothing (warmLoaded=$warm)" >&2
    exit 1
fi
echo "warm start loaded $warm entries"
"$BIN/dagrtaload" -base "http://$ADDR" -seed 1 -n 400 -c 4 -hot 12 -bases 3 \
    -out "$WORK/serve_warm.json"
# The identical replay against the warm cache must not re-run the analyzer.
execs=$(statsz_field executions)
if [ -z "$execs" ] || [ "$execs" -ne 0 ]; then
    echo "serve_smoke: warm replay recomputed ($execs executions)" >&2
    exit 1
fi
curl -fsS "http://$ADDR/metrics" | grep -q '^dagrtad_store_warm_loaded_total [1-9]' || {
    echo "serve_smoke: /metrics missing warm-load evidence" >&2
    exit 1
}
stop_daemon

baseline=$(ls BENCH_SERVE_[0-9]*.json 2>/dev/null | sort -t_ -k3 -n | tail -1 || true)
echo "== gating against ${baseline:-<no baseline>} =="
"$BIN/benchreport" -serve -input "$WORK/serve_cold.json" ${baseline:+-baseline "$baseline"}
"$BIN/benchreport" -serve -input "$WORK/serve_warm.json" ${baseline:+-baseline "$baseline"}
echo "serve smoke ok"
