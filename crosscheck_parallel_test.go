package hetrta

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exact"
)

// TestCrossValidationParallelDeterminism sweeps the same 520-instance
// population as TestCrossValidationDominance (identical RNG seed and draw
// sequence) and asserts the parallel exact oracle's determinism contract on
// every instance the dominance sweep solves exactly (n ≤ 18):
//
//   - instances a serial probe proves Optimal must yield the identical
//     makespan, status, and lower bound at parallelism 2 and 4;
//   - instances where the probe's budget trips must yield the identical
//     budget-capped bracket — every Result field, expansion count included —
//     at parallelism 1 and 4, because the bracket is fixed before the
//     search starts (DESIGN.md §13.4).
//
// This is the cross-layer guarantee the daemon's default parallelism rests
// on: turning -exact-parallel up can never change a reported verdict.
func TestCrossValidationParallelDeterminism(t *testing.T) {
	const iters = 520
	rng := rand.New(rand.NewSource(2018))
	hostSizes := []int{1, 2, 3, 4, 8}
	optimal, capped := 0, 0

	for i := 0; i < iters; i++ {
		// Draw exactly as TestCrossValidationDominance does, so the sweep
		// covers the same instance population (the RNG sequence must match
		// draw for draw).
		nMin := 5 + rng.Intn(8)
		nMax := nMin + 4 + rng.Intn(14)
		gen, err := NewGenerator(SmallTasks(nMin, nMax), rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		m := hostSizes[rng.Intn(len(hostSizes))]
		devClasses := rng.Intn(3)
		classes := []ResourceClass{{Name: "host", Count: m}}
		for c := 1; c <= devClasses; c++ {
			classes = append(classes, ResourceClass{Name: fmt.Sprintf("dev%d", c), Count: 1 + rng.Intn(2)})
		}
		p := NewPlatform(classes...)

		var g *Graph
		if devClasses == 0 {
			g, err = gen.Graph()
			if err != nil {
				t.Fatal(err)
			}
		} else {
			k := 1 + rng.Intn(3)
			frac := 0.05 + 0.55*rng.Float64()
			g, _, _, err = gen.MultiHetTask(k, frac, devClasses)
			if err != nil {
				t.Fatal(err)
			}
		}
		if g.NumNodes() > 18 {
			continue
		}

		probe, err := exact.MinMakespan(context.Background(), g, p, exact.Options{MaxExpansions: 40_000, Parallelism: 1})
		if err != nil {
			t.Fatalf("iter %d (%v, n=%d): serial probe: %v", i, p, g.NumNodes(), err)
		}

		if probe.Status == exact.Optimal {
			optimal++
			for _, workers := range []int{2, 4} {
				r, err := exact.MinMakespan(context.Background(), g, p, exact.Options{MaxExpansions: 1 << 40, Parallelism: workers})
				if err != nil {
					t.Fatalf("iter %d P=%d: %v", i, workers, err)
				}
				if r.Status != exact.Optimal || r.Makespan != probe.Makespan || r.LowerBound != probe.LowerBound {
					t.Fatalf("iter %d (%v, n=%d) P=%d: got (makespan=%d,%v,lb=%d), serial (makespan=%d,%v,lb=%d)",
						i, p, g.NumNodes(), workers,
						r.Makespan, r.Status, r.LowerBound,
						probe.Makespan, probe.Status, probe.LowerBound)
				}
			}
			continue
		}

		// Budget-capped: the bracket is computed before the search starts,
		// so all parallelism levels must agree on every field.
		capped++
		ref, err := exact.MinMakespan(context.Background(), g, p, exact.Options{MaxExpansions: 256, Parallelism: 1})
		if err != nil {
			t.Fatalf("iter %d capped ref: %v", i, err)
		}
		for _, workers := range []int{1, 4} {
			r, err := exact.MinMakespan(context.Background(), g, p, exact.Options{MaxExpansions: 256, Parallelism: workers})
			if err != nil {
				t.Fatalf("iter %d P=%d: %v", i, workers, err)
			}
			if r.Makespan != ref.Makespan || r.Status != ref.Status ||
				r.LowerBound != ref.LowerBound || r.Expansions != ref.Expansions ||
				len(r.Spans) != len(ref.Spans) {
				t.Fatalf("iter %d (%v, n=%d) P=%d: budget bracket diverged:\n got %+v\nwant %+v",
					i, p, g.NumNodes(), workers, r, ref)
			}
			for j := range r.Spans {
				if r.Spans[j] != ref.Spans[j] {
					t.Fatalf("iter %d P=%d: bracket span %d diverged: %+v vs %+v", i, workers, j, r.Spans[j], ref.Spans[j])
				}
			}
		}
	}
	if optimal == 0 || capped == 0 {
		t.Fatalf("sweep degenerate: %d optimal, %d budget-capped instances — both classes must be exercised", optimal, capped)
	}
	t.Logf("verified %d optimal and %d budget-capped instances", optimal, capped)
}
