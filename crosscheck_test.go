package hetrta

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestCrossValidationDominance is the cross-validation property sweep: over
// hundreds of random (DAG, platform) instances it asserts the dominance
// lattice the whole toolkit rests on —
//
//	exact makespan ≤ simulated makespan ≤ every safe bound
//	(Rhom on the paper's single-offload model; TypedRhom when applicable;
//	Rhet vs the simulated τ′)
//	Naive ≤ Rhom (the §3.2 reduction only ever subtracts)
//
// Rhom is asserted only on tasks with at most one offload node: this very
// sweep exhibits counterexamples beyond that model — with k ≥ 2 offloads
// serializing on one device, the simulated heterogeneous makespan can
// exceed len + (vol − len)/m, because Graham's argument cannot charge
// device-serialized work against m host cores (see DESIGN.md §4.3/§10;
// TypedRhom is the safe bound there and is asserted unconditionally).
//
// A violated instance is dumped as a JSON repro file (graph, platform,
// report) so the failure can be replayed without re-running the sweep.
func TestCrossValidationDominance(t *testing.T) {
	const iters = 520
	const eps = 1e-6
	rng := rand.New(rand.NewSource(2018))
	dumps := 0

	dump := func(i int, g *Graph, p Platform, rep *Report, why string) {
		if dumps >= 5 {
			return
		}
		dumps++
		repro := struct {
			Iteration int      `json:"iteration"`
			Why       string   `json:"why"`
			Platform  Platform `json:"platform"`
			Graph     *Graph   `json:"graph"`
			Report    *Report  `json:"report"`
		}{i, why, p, g, rep}
		data, err := json.MarshalIndent(repro, "", "  ")
		if err != nil {
			t.Logf("repro marshal failed: %v", err)
			return
		}
		path := filepath.Join(os.TempDir(), fmt.Sprintf("crosscheck-repro-%d.json", i))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Logf("repro write failed: %v", err)
			return
		}
		t.Logf("repro dumped to %s", path)
	}

	hostSizes := []int{1, 2, 3, 4, 8}
	for i := 0; i < iters; i++ {
		// Random structure: small fork-join DAGs so the exact oracle stays
		// cheap; random platform shape; random offload spread.
		nMin := 5 + rng.Intn(8)
		nMax := nMin + 4 + rng.Intn(14)
		gen, err := NewGenerator(SmallTasks(nMin, nMax), rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		m := hostSizes[rng.Intn(len(hostSizes))]
		devClasses := rng.Intn(3)
		classes := []ResourceClass{{Name: "host", Count: m}}
		for c := 1; c <= devClasses; c++ {
			classes = append(classes, ResourceClass{Name: fmt.Sprintf("dev%d", c), Count: 1 + rng.Intn(2)})
		}
		p := NewPlatform(classes...)

		var g *Graph
		if devClasses == 0 {
			g, err = gen.Graph()
			if err != nil {
				t.Fatal(err)
			}
		} else {
			k := 1 + rng.Intn(3)
			frac := 0.05 + 0.55*rng.Float64()
			g, _, _, err = gen.MultiHetTask(k, frac, devClasses)
			if err != nil {
				t.Fatal(err)
			}
		}

		// The bound set under test is the registered lattice, not a
		// hand-picked list: a bound missing from BoundLattice is a bound
		// this sweep silently stops checking, which is exactly what the
		// boundreg analyzer forbids.
		bounds := make([]Bound, 0, len(BoundLattice))
		for _, name := range LatticeNames() {
			bounds = append(bounds, BoundLattice[name].New())
		}
		opts := []Option{
			WithPlatform(p),
			WithBounds(bounds...),
			WithPolicy(BreadthFirst),
		}
		exactOn := g.NumNodes() <= 18
		if exactOn {
			opts = append(opts, WithExactBudget(20_000))
		}
		an, err := NewAnalyzer(opts...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := an.Analyze(context.Background(), g)
		if err != nil {
			t.Fatalf("iter %d (%v, n=%d): %v", i, p, g.NumNodes(), err)
		}

		sim := float64(rep.Simulation.Makespan)
		fail := func(why string) {
			dump(i, g, p, rep, why)
			t.Errorf("iter %d (%v, n=%d): %s", i, p, g.NumNodes(), why)
		}

		// Each registered bound is asserted per its declared lattice
		// relation (BoundLattice, registry.go).
		for _, name := range LatticeNames() {
			entry := BoundLattice[name]
			v, ok := rep.BoundValue(name)
			if !ok {
				continue
			}
			switch entry.Relation {
			case BoundsSim:
				if entry.SingleOffloadOnly && rep.Graph.Offloads > 1 {
					continue
				}
				if sim > v+eps {
					fail(fmt.Sprintf("sim %v exceeds %s %v", sim, name, v))
				}
			case BoundsSimTransformed:
				simT := float64(rep.Simulation.MakespanTransformed)
				if simT > v+eps {
					fail(fmt.Sprintf("sim(τ') %v exceeds %s %v", simT, name, v))
				}
			case UnsafeDemo:
				// Never asserted as an upper bound; specific relations below.
			default:
				t.Fatalf("bound %q has unknown lattice relation %q", name, entry.Relation)
			}
		}
		// The unsafe §3.2 reduction only ever subtracts from Rhom.
		if nv, ok := rep.Bound("naive"); ok && nv.Skipped == "" {
			if rv, rok := rep.BoundValue("rhom"); rok && nv.Value > rv+eps {
				fail(fmt.Sprintf("naive %v exceeds rhom %v", nv.Value, rv))
			}
		}
		// The exact (or best-found) makespan never exceeds any simulated
		// schedule, and its lower bound never exceeds the makespan.
		if rep.Exact != nil {
			if float64(rep.Exact.Makespan) > sim+eps {
				fail(fmt.Sprintf("exact %d exceeds sim %v", rep.Exact.Makespan, sim))
			}
			if rep.Exact.LowerBound > rep.Exact.Makespan {
				fail(fmt.Sprintf("exact lower bound %d exceeds makespan %d",
					rep.Exact.LowerBound, rep.Exact.Makespan))
			}
		}
		if t.Failed() && dumps >= 5 {
			t.Fatalf("stopping after %d dumped repros", dumps)
		}
	}
}
