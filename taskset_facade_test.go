package hetrta

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// admitTestAnalyzer returns the analyzer + taskset analyzer used across the
// facade tests: the paper platform, all safe bounds.
func admitTestAnalyzer(t testing.TB, m int, opts ...TasksetOption) *TasksetAnalyzer {
	t.Helper()
	an, err := NewAnalyzer(
		WithPlatform(HeteroPlatform(m)),
		WithBounds(RhomBound(), RhetBound(), TypedRhomBound()),
	)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := NewTasksetAnalyzer(an, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ta
}

// mkAdmitTask builds a deterministic sporadic task from a seeded generator
// at a target utilization (implicit deadline, no jitter).
func mkAdmitTask(t testing.TB, seed int64, frac, u float64) SporadicTask {
	t.Helper()
	gen, err := NewGenerator(SmallTasks(8, 40), seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if frac > 0 {
		SetOffload(g, g.NumNodes()/2, frac)
	}
	period := int64(float64(g.Volume()) / u)
	if period < 1 {
		period = 1
	}
	return SporadicTask{G: g, Period: period, Deadline: period}
}

func TestTasksetAnalyzerAdmit(t *testing.T) {
	ta := admitTestAnalyzer(t, 8)
	ts := Taskset{Tasks: []SporadicTask{
		mkAdmitTask(t, 1, 0.3, 0.4),
		mkAdmitTask(t, 2, 0, 0.3),
		mkAdmitTask(t, 3, 0.2, 0.2),
	}}
	rep, err := ta.Admit(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Admitted {
		t.Fatalf("low-utilization taskset rejected: %+v", rep.Policies)
	}
	if rep.Taskset.Tasks != 3 || rep.Taskset.Offloading != 2 {
		t.Fatalf("summary wrong: %+v", rep.Taskset)
	}
	if len(rep.Policies) != 2 {
		t.Fatalf("want 2 policy verdicts, got %d", len(rep.Policies))
	}
	for _, name := range []string{"federated", "global"} {
		pr, ok := rep.PolicyReport(name)
		if !ok {
			t.Fatalf("missing %s verdict", name)
		}
		if len(pr.Tasks) != 3 {
			t.Fatalf("%s: %d decisions", name, len(pr.Tasks))
		}
	}
	if rep.Fingerprint == "" {
		t.Fatal("report lacks a fingerprint")
	}

	// Reject: a deadline below the critical path defeats every policy.
	bad := Taskset{Tasks: []SporadicTask{func() SporadicTask {
		g := NewGraph()
		a := g.AddNode("a", 50, Host)
		b := g.AddNode("b", 50, Host)
		g.MustAddEdge(a, b)
		return SporadicTask{G: g, Period: 60, Deadline: 60}
	}()}}
	rep2, err := ta.Admit(context.Background(), bad)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Admitted {
		t.Fatal("admitted a task with deadline below its critical path")
	}
	for _, pr := range rep2.Policies {
		if pr.Admitted || pr.Reason == "" {
			t.Fatalf("%s: admitted=%v reason=%q", pr.Policy, pr.Admitted, pr.Reason)
		}
	}

	// Invalid tasksets are errors, not reports.
	if _, err := ta.Admit(context.Background(), Taskset{}); err == nil {
		t.Fatal("empty taskset admitted without error")
	}
}

// TestAdmitReportPermutationInvariant: permuting the taskset (and
// relabeling member graphs by rebuilding them in a different node order)
// yields byte-identical report JSON — the property the admission cache's
// byte-identity rests on.
func TestAdmitReportPermutationInvariant(t *testing.T) {
	ta := admitTestAnalyzer(t, 4)
	mkSet := func(perm []int) Taskset {
		tasks := []SporadicTask{
			mkAdmitTask(t, 11, 0.3, 0.5),
			mkAdmitTask(t, 12, 0, 0.2),
			mkAdmitTask(t, 13, 0.1, 0.8),
			mkAdmitTask(t, 14, 0.4, 1.4),
		}
		out := Taskset{Tasks: make([]SporadicTask, len(tasks))}
		for i, j := range perm {
			out.Tasks[i] = tasks[j]
		}
		return out
	}
	base, err := ta.Admit(context.Background(), mkSet([]int{0, 1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		rep, err := ta.Admit(context.Background(), mkSet(rng.Perm(4)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, baseJSON) {
			t.Fatalf("trial %d: permuted taskset report differs:\n%s\n%s", trial, got, baseJSON)
		}
	}
}

// TestAdmitBatchDeterministic mirrors the AnalyzeBatch coverage: parallel
// and serial batches yield identical reports and identical error slots.
func TestAdmitBatchDeterministic(t *testing.T) {
	mkBatch := func() []Taskset {
		var tss []Taskset
		for s := int64(0); s < 6; s++ {
			tss = append(tss, Taskset{Tasks: []SporadicTask{
				mkAdmitTask(t, 100+s, 0.3, 0.4),
				mkAdmitTask(t, 200+s, 0, 0.6),
			}})
		}
		// Two failure slots: an empty taskset and a nil-graph member.
		tss = append(tss, Taskset{})
		tss = append(tss, Taskset{Tasks: []SporadicTask{{G: nil, Period: 10, Deadline: 10}}})
		return tss
	}

	serialTA := admitTestAnalyzer(t, 8, WithTasksetParallelism(1))
	parallelTA := admitTestAnalyzer(t, 8, WithTasksetParallelism(8))

	serial, err := serialTA.AdmitBatch(context.Background(), mkBatch())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := parallelTA.AdmitBatch(context.Background(), mkBatch())
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("length mismatch: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		sj, err := json.Marshal(serial[i])
		if err != nil {
			t.Fatal(err)
		}
		pj, err := json.Marshal(parallel[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj, pj) {
			t.Errorf("slot %d differs between parallelism 1 and 8:\n%s\n%s", i, sj, pj)
		}
	}
	if serial[6].Err == "" || serial[7].Err == "" {
		t.Fatalf("error slots not recorded: %q, %q", serial[6].Err, serial[7].Err)
	}
	if serial[6].Admitted || len(serial[6].Policies) != 0 {
		t.Fatal("error slot carries analysis results")
	}
}

func TestAdmitBatchCancellation(t *testing.T) {
	ta := admitTestAnalyzer(t, 4, WithTasksetParallelism(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var tss []Taskset
	for s := int64(0); s < 4; s++ {
		tss = append(tss, Taskset{Tasks: []SporadicTask{mkAdmitTask(t, 300+s, 0.2, 0.4)}})
	}
	reports, err := ta.AdmitBatch(ctx, tss)
	if err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
	for i, r := range reports {
		if r == nil || r.Err == "" {
			t.Fatalf("slot %d: cancellation not recorded: %+v", i, r)
		}
	}
}

func TestTasksetAnalyzerSignature(t *testing.T) {
	both := admitTestAnalyzer(t, 4)
	fedOnly := admitTestAnalyzer(t, 4, WithTasksetPolicies(FederatedPolicy()))
	if both.Signature() == fedOnly.Signature() {
		t.Fatal("policy set does not show up in the signature")
	}
	if !strings.Contains(both.Signature(), "tspolicies=federated,global") {
		t.Fatalf("signature %q lacks the policy list", both.Signature())
	}
	otherPlat := admitTestAnalyzer(t, 8)
	if both.Signature() == otherPlat.Signature() {
		t.Fatal("platform does not show up in the signature")
	}
	if _, err := NewTasksetAnalyzer(nil); err == nil {
		t.Fatal("nil analyzer accepted")
	}
	an, _ := NewAnalyzer()
	if _, err := NewTasksetAnalyzer(an, WithTasksetPolicies(FederatedPolicy(), FederatedPolicy())); err == nil {
		t.Fatal("duplicate policies accepted")
	}
	if _, err := NewTasksetAnalyzer(an, WithTasksetParallelism(-1)); err == nil {
		t.Fatal("negative parallelism accepted")
	}
}

// TestAdmitMixedOffloadClassesRejectsNotErrors: a model-valid task whose
// offload classes are only partially backed by machines (class 1 has a
// device, class 2 does not) has no safe bound — Rhom is out (device
// serialization), Rhet is out (multi-offload), TypedRhom is out (empty
// class). That must surface as a per-task REJECTION in the report, not as
// an Admit error (422 from the daemon / a poisoned batch slot).
func TestAdmitMixedOffloadClassesRejectsNotErrors(t *testing.T) {
	g := NewGraph()
	src := g.AddNode("src", 2, Host)
	gpu := g.AddNode("gpu", 8, Offload) // class 1: machine exists
	fpga := g.AddNode("fpga", 6, Offload)
	sink := g.AddNode("sink", 2, Host)
	g.SetClass(fpga, 2) // class 2: no machine on Hetero(4)
	g.MustAddEdge(src, gpu)
	g.MustAddEdge(src, fpga)
	g.MustAddEdge(gpu, sink)
	g.MustAddEdge(fpga, sink)

	// Heavy (U = 18/11) with a deadline below Rhom's reach (len = 12 > 11),
	// so neither the homogeneous fallback nor any het analysis certifies it.
	// (A light variant of the same graph is admitted under the federated
	// shared-partition reading — sequential host execution — so the
	// no-safe-bound path needs a heavy task.)
	ta := admitTestAnalyzer(t, 4)
	rep, err := ta.Admit(context.Background(), Taskset{Tasks: []SporadicTask{
		{G: g, Period: 11, Deadline: 11},
	}})
	if err != nil {
		t.Fatalf("Admit errored instead of rejecting: %v", err)
	}
	if rep.Admitted {
		t.Fatal("admitted a task with no safe bound")
	}
	for _, pr := range rep.Policies {
		if pr.Admitted {
			t.Fatalf("%s admitted a task with no safe bound", pr.Policy)
		}
		if pr.Reason == "" {
			t.Fatalf("%s rejected without a reason", pr.Policy)
		}
	}
	if !strings.Contains(rep.Policies[1].Reason, "no safe response-time bound") {
		t.Fatalf("global reason does not name the cause: %q", rep.Policies[1].Reason)
	}
}
