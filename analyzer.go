package hetrta

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/exact"
	"repro/internal/sched"
	"repro/internal/transform"
)

// Degradation reasons carried in Report.DegradedReason. The first two are
// produced by the Analyzer itself when the exact stage runs out of its
// expansion budget or deadline slice; the last two are stamped by the
// serving layer (internal/service) when it routes a request around the
// exact stage entirely.
const (
	// DegradedExactBudget: the exact search exhausted MaxExpansions and
	// returned a feasible-but-unproven makespan.
	DegradedExactBudget = "exact-budget-exhausted"
	// DegradedExactDeadline: the exact stage's deadline slice
	// (DegradeOptions.ExactSlice) expired before the search finished; the
	// report carries bounds only.
	DegradedExactDeadline = "exact-deadline-exceeded"
	// DegradedBreakerOpen: the serving layer's circuit breaker was open, so
	// the exact stage was skipped preemptively.
	DegradedBreakerOpen = "breaker-open"
	// DegradedHardInstance: the graph's fingerprint is in the serving
	// layer's hard-instance cache — a previous full analysis on it degraded
	// or timed out — so the exact stage was skipped immediately.
	DegradedHardInstance = "hard-instance"
)

// Analyzer is the construct-once entry point of the toolkit: configure the
// platform, the bounds, and the optional simulation/exact stages with
// functional options, then call Analyze for one graph or AnalyzeBatch for
// many. An Analyzer is immutable after construction and safe for concurrent
// use.
//
//	an, err := hetrta.NewAnalyzer(
//	    hetrta.WithPlatform(hetrta.HeteroPlatform(4)),
//	    hetrta.WithBounds(hetrta.RhomBound(), hetrta.RhetBound(), hetrta.NaiveBound()),
//	    hetrta.WithExactBudget(200_000),
//	)
//	report, err := an.Analyze(ctx, g)
type Analyzer struct {
	platform    Platform
	bounds      []Bound
	policy      func() Policy
	exactOn     bool
	exactOpts   ExactOptions
	parallelism int
	validate    *ValidateOptions
	devices     *int // deferred WithDevices override

	degrade       *DegradeOptions
	forcedDegrade string // BoundsOnly reason; marks every report degraded
}

// DegradeOptions configures graceful degradation of the exact stage
// (WithDegradation). With degradation on, exhausting the exact search's
// expansion budget or its deadline slice no longer fails or blocks the
// analysis: the report comes back valid — bounds, transformation, and
// simulation intact — but marked Degraded with a machine-readable reason.
type DegradeOptions struct {
	// ExactSlice caps the wall-clock time of the exact stage. When it
	// expires before the search finishes, the report omits the Exact
	// section and is marked Degraded with DegradedExactDeadline. Zero
	// means no time slice (budget exhaustion still degrades).
	ExactSlice time.Duration
}

// Option configures an Analyzer at construction time.
type Option func(*Analyzer) error

// WithPlatform sets the execution platform. The default is the paper's
// evaluation midpoint: 4 host cores + 1 accelerator.
func WithPlatform(p Platform) Option {
	return func(a *Analyzer) error {
		a.platform = p
		return nil
	}
}

// WithDevices overrides the total device count of the platform (applied
// after WithPlatform regardless of option order). It requires a platform
// with at most one device class — with several, "the device count" is
// ambiguous; construct the class list explicitly instead.
func WithDevices(d int) Option {
	return func(a *Analyzer) error {
		if d < 0 {
			return fmt.Errorf("hetrta: negative device count %d", d)
		}
		a.devices = &d
		return nil
	}
}

// WithPolicy enables the simulation stage: every report gains a
// SimulationReport of τ (and τ' when a transformation applies) under the
// policy the factory returns. A factory is required — policies carry
// per-run state, and AnalyzeBatch simulates concurrently.
func WithPolicy(mk func() Policy) Option {
	return func(a *Analyzer) error {
		if mk == nil {
			return fmt.Errorf("hetrta: WithPolicy(nil)")
		}
		a.policy = mk
		return nil
	}
}

// WithExactBudget enables the exact minimum-makespan stage with the given
// branch-and-bound expansion budget (0 uses the solver default). The exact
// search honors Analyze's context: cancelling it aborts mid-search with
// context.Canceled.
func WithExactBudget(budget int64) Option {
	return func(a *Analyzer) error {
		if budget < 0 {
			return fmt.Errorf("hetrta: negative exact budget %d", budget)
		}
		a.exactOn = true
		a.exactOpts.MaxExpansions = budget
		return nil
	}
}

// WithExactOptions enables the exact minimum-makespan stage with full
// solver options (budget, memo limit, context poll interval, parallelism,
// branching restriction). WithExactBudget is the common-case shorthand.
func WithExactOptions(opts ExactOptions) Option {
	return func(a *Analyzer) error {
		if opts.MaxExpansions < 0 {
			return fmt.Errorf("hetrta: negative exact budget %d", opts.MaxExpansions)
		}
		if opts.MemoLimit < 0 {
			return fmt.Errorf("hetrta: negative exact memo limit %d", opts.MemoLimit)
		}
		if opts.CtxCheckEvery < 0 {
			return fmt.Errorf("hetrta: negative exact poll interval %d", opts.CtxCheckEvery)
		}
		if opts.Parallelism < 0 {
			return fmt.Errorf("hetrta: negative exact parallelism %d", opts.Parallelism)
		}
		a.exactOn = true
		a.exactOpts = opts
		return nil
	}
}

// WithDegradation enables graceful degradation of the exact stage: instead
// of failing (slice expiry) or silently returning an unproven result
// (budget exhaustion), Analyze returns a valid report marked Degraded with
// a machine-readable reason. It has no effect unless the exact stage is
// enabled (WithExactBudget / WithExactOptions).
func WithDegradation(d DegradeOptions) Option {
	return func(a *Analyzer) error {
		if d.ExactSlice < 0 {
			return fmt.Errorf("hetrta: negative exact slice %v", d.ExactSlice)
		}
		a.degrade = &d
		return nil
	}
}

// WithBounds selects the response-time bounds each report computes, in
// order. The default is DefaultBounds (Rhom + Rhet); pass any mix of the
// built-ins and custom Bound implementations. Names must be unique.
func WithBounds(bs ...Bound) Option {
	return func(a *Analyzer) error {
		if len(bs) == 0 {
			return fmt.Errorf("hetrta: WithBounds needs at least one bound")
		}
		a.bounds = append([]Bound(nil), bs...)
		return nil
	}
}

// WithParallelism sets the AnalyzeBatch worker-pool size. The default (0)
// is one worker per CPU; 1 forces sequential processing. Output order is
// deterministic at any parallelism.
func WithParallelism(n int) Option {
	return func(a *Analyzer) error {
		if n < 0 {
			return fmt.Errorf("hetrta: negative parallelism %d", n)
		}
		a.parallelism = n
		return nil
	}
}

// WithValidation makes every Analyze call validate the graph first under
// the given options (e.g. PaperModel()). The default performs no structural
// validation beyond what the analyses themselves require.
func WithValidation(v ValidateOptions) Option {
	return func(a *Analyzer) error {
		a.validate = &v
		return nil
	}
}

// NewAnalyzer builds an Analyzer from the options, validating the resulting
// configuration.
func NewAnalyzer(opts ...Option) (*Analyzer, error) {
	a := &Analyzer{
		platform: HeteroPlatform(4),
		bounds:   DefaultBounds(),
	}
	for _, opt := range opts {
		if err := opt(a); err != nil {
			return nil, err
		}
	}
	if a.devices != nil {
		p, err := a.platform.WithDeviceCount(*a.devices)
		if err != nil {
			return nil, fmt.Errorf("hetrta: %w", err)
		}
		a.platform = p
	}
	if err := a.platform.Validate(); err != nil {
		return nil, fmt.Errorf("hetrta: %w", err)
	}
	seen := map[string]bool{}
	for _, b := range a.bounds {
		if seen[b.Name()] {
			return nil, fmt.Errorf("hetrta: duplicate bound %q", b.Name())
		}
		seen[b.Name()] = true
	}
	return a, nil
}

// Platform returns the analyzer's configured platform.
func (a *Analyzer) Platform() Platform { return a.platform }

// ExactEnabled reports whether the exact minimum-makespan stage is
// configured (WithExactBudget / WithExactOptions).
func (a *Analyzer) ExactEnabled() bool { return a.exactOn }

// BoundsOnly returns a degraded variant of the analyzer: identical
// configuration except the exact stage is disabled, and every report it
// produces is marked Degraded with the given reason (one of the Degraded*
// constants). The serving layer uses it to answer with safe bounds when
// the full pipeline is skipped — breaker open, or the graph is a known
// hard instance. The receiver is not modified.
func (a *Analyzer) BoundsOnly(reason string) *Analyzer {
	d := *a
	d.exactOn = false
	d.exactOpts = ExactOptions{}
	d.forcedDegrade = reason
	return &d
}

// Signature returns a stable string identifying every configuration input
// that can influence a Report: the platform's full class list, the bound
// set (in order), the simulation policy, the exact-stage options, and the
// validation options. Two Analyzers with equal signatures produce
// byte-identical reports for equal graphs, so (Graph.Fingerprint,
// Signature) is a sound cache key — the serving layer (internal/service)
// keys its result cache exactly this way. Batch parallelism is
// deliberately excluded: batch output is deterministic at any pool size.
// Exact-stage parallelism is excluded for the same reason — the oracle
// proves the same optimum (or reports the same budget-capped bracket) at
// any worker count, so replicas configured with different -exact-parallel
// values may share cache entries; only the path-dependent Expansions
// field of a proven-optimal report can differ across worker counts.
func (a *Analyzer) Signature() string {
	var b strings.Builder
	b.WriteString("plat=")
	for i, c := range a.platform.Classes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", c.Name, c.Count)
	}
	b.WriteString(";bounds=")
	for i, bd := range a.bounds {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(bd.Name())
	}
	if a.policy != nil {
		fmt.Fprintf(&b, ";policy=%s", a.policy().Name())
	}
	if a.exactOn {
		fmt.Fprintf(&b, ";exact=%d/%d/%d/%t",
			a.exactOpts.MaxExpansions, a.exactOpts.MemoLimit,
			a.exactOpts.CtxCheckEvery, a.exactOpts.Unrestricted)
	}
	if a.validate != nil {
		fmt.Fprintf(&b, ";validate=%t/%t/%t/%t",
			a.validate.RequireSingleSourceSink, a.validate.RequireReduced,
			a.validate.RequireSingleOffload, a.validate.AllowZeroWCET)
	}
	if a.degrade != nil {
		fmt.Fprintf(&b, ";degrade=%d", a.degrade.ExactSlice.Nanoseconds())
	}
	if a.forcedDegrade != "" {
		fmt.Fprintf(&b, ";forced=%s", a.forcedDegrade)
	}
	return b.String()
}

// Analyze runs the configured pipeline on one task graph and returns its
// Report. The input graph is not modified: analysis runs on a transitively
// reduced clone, as Algorithm 1 requires. Cancelling ctx aborts promptly
// with the context's error — including mid-search inside the exact oracle.
func (a *Analyzer) Analyze(ctx context.Context, g *Graph) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("hetrta: Analyze(nil graph)")
	}
	if a.validate != nil {
		if err := g.Validate(*a.validate); err != nil {
			return nil, err
		}
	}

	work := g.Clone()
	removed, err := work.TransitiveReduction()
	if err != nil {
		return nil, err
	}

	rep := &Report{Platform: a.platform}
	rep.Graph = GraphSummary{
		Nodes:        work.NumNodes(),
		Edges:        work.NumEdges(),
		ReducedEdges: removed,
		Volume:       work.Volume(),
		CriticalPath: work.CriticalPathLength(),
	}
	offs := work.OffloadNodes()
	rep.Graph.Offloads = len(offs)
	if len(offs) == 1 {
		vOff := offs[0]
		frac := 0.0
		if v := work.Volume(); v > 0 {
			frac = float64(work.WCET(vOff)) / float64(v)
		}
		rep.Graph.Offload = &OffloadSummary{
			Node: vOff,
			Name: work.Name(vOff),
			COff: work.WCET(vOff),
			Frac: frac,
		}
	}

	// Iterated Algorithm 1, computed once and shared by every bound: every
	// offloaded region is gated, the paper's single-offload model being the
	// one-step case.
	if len(offs) >= 1 {
		mt, err := transform.All(work)
		if err != nil {
			return nil, err
		}
		rep.MultiTransformResult = mt
		rep.Transforms = make([]TransformStepSummary, len(mt.Steps))
		for i, step := range mt.Steps {
			rep.Transforms[i] = TransformStepSummary{
				Offload: step.Offload,
				Name:    work.Name(step.Offload),
				Class:   work.Class(step.Offload),
				COff:    work.WCET(step.Offload),
				Sync:    step.Sync,
				Gate:    mt.Syncs[step.Offload],
				LenPar:  step.Par.CriticalPathLength(),
				VolPar:  step.Par.Volume(),
			}
		}
		if len(mt.Steps) == 1 {
			tr := mt.Steps[0]
			rep.TransformResult = tr
			rep.Transform = &TransformSummary{
				Sync:     tr.Sync,
				LenPrime: tr.Transformed.CriticalPathLength(),
				VolPrime: tr.Transformed.Volume(),
				ParNodes: tr.ParSet.Sorted(),
				LenPar:   tr.Par.CriticalPathLength(),
				VolPar:   tr.Par.Volume(),
			}
		}
	}

	in := BoundInput{Graph: work, Platform: a.platform, Transform: rep.TransformResult, Multi: rep.MultiTransformResult}
	for _, b := range a.bounds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := b.Compute(ctx, in)
		if err != nil {
			return nil, fmt.Errorf("hetrta: bound %q: %w", b.Name(), err)
		}
		if res.Name == "" {
			res.Name = b.Name()
		}
		rep.Bounds = append(rep.Bounds, res)
	}

	if a.policy != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sim, err := sched.Simulate(work, a.platform, a.policy())
		if err != nil {
			return nil, err
		}
		rep.SimOriginal = sim
		rep.Simulation = &SimulationReport{Policy: sim.Policy, Makespan: sim.Makespan}
		if rep.MultiTransformResult != nil {
			simT, err := sched.Simulate(rep.MultiTransformResult.Transformed, a.platform, a.policy())
			if err != nil {
				return nil, err
			}
			rep.SimTransformed = simT
			rep.Simulation.MakespanTransformed = simT.Makespan
		}
	}

	if a.exactOn {
		exactCtx := ctx
		var cancel context.CancelFunc
		if a.degrade != nil && a.degrade.ExactSlice > 0 {
			exactCtx, cancel = context.WithTimeout(ctx, a.degrade.ExactSlice)
		}
		opt, err := exact.MinMakespan(exactCtx, work, a.platform, a.exactOpts)
		if cancel != nil {
			cancel()
		}
		switch {
		case err == nil:
			rep.ExactResult = opt
			rep.Exact = &ExactReport{
				Makespan:   opt.Makespan,
				Status:     opt.Status.String(),
				LowerBound: opt.LowerBound,
				Expansions: opt.Expansions,
			}
			if a.degrade != nil && opt.Status != exact.Optimal {
				// The budget expired: the makespan is feasible but unproven.
				// The bracket [LowerBound, Makespan] is still safe, so the
				// Exact section stays — flagged, not dropped.
				rep.Degraded = true
				rep.DegradedReason = DegradedExactBudget
			}
		case a.degrade != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
			// Only the stage's own slice expired — the caller's context is
			// intact. Degrade to a bounds-only report instead of failing.
			rep.Degraded = true
			rep.DegradedReason = DegradedExactDeadline
		default:
			return nil, err
		}
	}
	if a.forcedDegrade != "" {
		rep.Degraded = true
		rep.DegradedReason = a.forcedDegrade
	}

	return rep, nil
}

// AnalyzeBatch analyzes many graphs on the analyzer's worker pool
// (WithParallelism) and returns one Report per input, in input order —
// the order is deterministic at any parallelism because workers only ever
// write their own slot. Per-graph failures do not abort the batch: the
// failing graph's Report carries the error in Err. The returned error is
// non-nil only when ctx is cancelled, in which case reports of unfinished
// graphs record the cancellation.
func (a *Analyzer) AnalyzeBatch(ctx context.Context, gs []*Graph) ([]*Report, error) {
	reports := make([]*Report, len(gs))
	err := batch.Run(ctx, len(gs), a.parallelism, func(ctx context.Context, i int) error {
		rep, err := a.Analyze(ctx, gs[i])
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				reports[i] = &Report{Platform: a.platform, Err: ctxErr.Error()}
				return ctxErr
			}
			reports[i] = &Report{Platform: a.platform, Err: err.Error()}
			return nil
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		// Only context cancellation propagates; fill the slots the pool
		// never dispatched.
		for i, r := range reports {
			if r == nil {
				reports[i] = &Report{Platform: a.platform, Err: err.Error()}
			}
		}
		return reports, err
	}
	return reports, nil
}
