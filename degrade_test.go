package hetrta_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	hetrta "repro"
)

// threeParallel builds the smallest deterministic hard-ish instance: three
// independent WCET-3 jobs on two host cores. The list-scheduling incumbent
// (6) beats the root lower bound (ceil(9/2) = 5), so the exact search must
// branch and a 1-expansion budget exhausts immediately.
func threeParallel() *hetrta.Graph {
	g := hetrta.NewGraph()
	g.AddNode("a", 3, hetrta.Host)
	g.AddNode("b", 3, hetrta.Host)
	g.AddNode("c", 3, hetrta.Host)
	return g
}

func TestDegradeBudgetExhaustion(t *testing.T) {
	an, err := hetrta.NewAnalyzer(
		hetrta.WithPlatform(hetrta.HeteroPlatform(2)),
		hetrta.WithExactOptions(hetrta.ExactOptions{MaxExpansions: 1}),
		hetrta.WithDegradation(hetrta.DegradeOptions{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.Analyze(context.Background(), threeParallel())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.DegradedReason != hetrta.DegradedExactBudget {
		t.Fatalf("degraded = %v / %q, want budget exhaustion", rep.Degraded, rep.DegradedReason)
	}
	// Budget exhaustion keeps the (safe, unproven) exact bracket.
	if rep.Exact == nil || rep.Exact.Status != "feasible" || rep.Exact.Makespan != 6 || rep.Exact.LowerBound != 5 {
		t.Fatalf("exact section = %+v, want feasible 6 / LB 5", rep.Exact)
	}
}

func TestNoDegradationKeepsOldBehavior(t *testing.T) {
	an, err := hetrta.NewAnalyzer(
		hetrta.WithPlatform(hetrta.HeteroPlatform(2)),
		hetrta.WithExactOptions(hetrta.ExactOptions{MaxExpansions: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.Analyze(context.Background(), threeParallel())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded || rep.DegradedReason != "" {
		t.Fatalf("report marked degraded without WithDegradation: %v / %q", rep.Degraded, rep.DegradedReason)
	}
}

func TestDegradeExactSliceExpiry(t *testing.T) {
	// An instance whose exact search runs far longer than the slice: the
	// stage's private deadline expires, and with degradation on the report
	// comes back bounds-only instead of failing.
	gen, err := hetrta.NewGenerator(hetrta.SmallTasks(40, 64), 3)
	if err != nil {
		t.Fatal(err)
	}
	g, _, _, err := gen.HetTask(0.15)
	if err != nil {
		t.Fatal(err)
	}
	an, err := hetrta.NewAnalyzer(
		hetrta.WithPlatform(hetrta.HeteroPlatform(2)),
		hetrta.WithExactBudget(1<<40),
		hetrta.WithDegradation(hetrta.DegradeOptions{ExactSlice: 10 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.Analyze(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.DegradedReason != hetrta.DegradedExactDeadline {
		t.Fatalf("degraded = %v / %q, want slice expiry", rep.Degraded, rep.DegradedReason)
	}
	if rep.Exact != nil {
		t.Fatalf("slice expiry must drop the exact section, got %+v", rep.Exact)
	}
	if len(rep.Bounds) == 0 {
		t.Fatal("degraded report lost its bounds")
	}
}

func TestDegradeCallerDeadlineStillFails(t *testing.T) {
	// Degradation only absorbs the stage's own slice. When the caller's
	// context expires, Analyze must still fail — the client is gone.
	gen, err := hetrta.NewGenerator(hetrta.SmallTasks(40, 64), 3)
	if err != nil {
		t.Fatal(err)
	}
	g, _, _, err := gen.HetTask(0.15)
	if err != nil {
		t.Fatal(err)
	}
	an, err := hetrta.NewAnalyzer(
		hetrta.WithPlatform(hetrta.HeteroPlatform(2)),
		hetrta.WithExactBudget(1<<40),
		hetrta.WithDegradation(hetrta.DegradeOptions{ExactSlice: time.Hour}),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = an.Analyze(ctx, g)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the caller's DeadlineExceeded", err)
	}
}

func TestBoundsOnlyVariant(t *testing.T) {
	an, err := hetrta.NewAnalyzer(
		hetrta.WithPlatform(hetrta.HeteroPlatform(2)),
		hetrta.WithExactBudget(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !an.ExactEnabled() {
		t.Fatal("ExactEnabled() = false with WithExactBudget configured")
	}
	deg := an.BoundsOnly(hetrta.DegradedBreakerOpen)
	if deg.ExactEnabled() {
		t.Fatal("BoundsOnly variant still has the exact stage on")
	}
	if an == deg || !an.ExactEnabled() {
		t.Fatal("BoundsOnly mutated its receiver")
	}
	rep, err := deg.Analyze(context.Background(), threeParallel())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.DegradedReason != hetrta.DegradedBreakerOpen {
		t.Fatalf("degraded = %v / %q, want forced breaker-open", rep.Degraded, rep.DegradedReason)
	}
	if rep.Exact != nil {
		t.Fatalf("bounds-only report carries an exact section: %+v", rep.Exact)
	}
	if len(rep.Bounds) == 0 {
		t.Fatal("bounds-only report lost its bounds")
	}
}

func TestDegradeSignatureComponents(t *testing.T) {
	base, err := hetrta.NewAnalyzer(hetrta.WithExactBudget(0))
	if err != nil {
		t.Fatal(err)
	}
	sliced, err := hetrta.NewAnalyzer(
		hetrta.WithExactBudget(0),
		hetrta.WithDegradation(hetrta.DegradeOptions{ExactSlice: 50 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if base.Signature() == sliced.Signature() {
		t.Fatal("degradation slice does not show in Signature")
	}
	if !strings.Contains(sliced.Signature(), ";degrade=") {
		t.Fatalf("signature %q lacks degrade component", sliced.Signature())
	}
	forced := base.BoundsOnly(hetrta.DegradedHardInstance)
	if forced.Signature() == base.Signature() {
		t.Fatal("forced degradation does not show in Signature")
	}
	if !strings.Contains(forced.Signature(), ";forced=hard-instance") {
		t.Fatalf("signature %q lacks forced component", forced.Signature())
	}
}

func TestDegradeOptionValidation(t *testing.T) {
	_, err := hetrta.NewAnalyzer(
		hetrta.WithDegradation(hetrta.DegradeOptions{ExactSlice: -time.Second}),
	)
	if err == nil {
		t.Fatal("negative ExactSlice accepted")
	}
}
