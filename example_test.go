package hetrta_test

import (
	"fmt"
	"log"

	hetrta "repro"
)

// Example reproduces the paper's running example (Figure 1/2): the
// homogeneous bound, the unsafe naive reduction, and the heterogeneous
// bound on the transformed task.
func Example() {
	g := hetrta.NewGraph()
	v1 := g.AddNode("v1", 2, hetrta.Host)
	v2 := g.AddNode("v2", 4, hetrta.Host)
	v3 := g.AddNode("v3", 5, hetrta.Host)
	v4 := g.AddNode("v4", 2, hetrta.Host)
	v5 := g.AddNode("v5", 1, hetrta.Host)
	vOff := g.AddNode("vOff", 4, hetrta.Offload)
	g.MustAddEdge(v1, v2)
	g.MustAddEdge(v1, v3)
	g.MustAddEdge(v1, v4)
	g.MustAddEdge(v2, v5)
	g.MustAddEdge(v3, v5)
	g.MustAddEdge(v4, vOff)
	g.NormalizeSourceSink()

	a, err := hetrta.AnalyzeOn(g, hetrta.HeteroPlatform(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vol=%d len=%d\n", g.Volume(), g.CriticalPathLength())
	fmt.Printf("Rhom=%.0f naive=%.0f Rhet=%.0f (%s)\n", a.Rhom, a.Naive, a.Het.R, a.Het.Scenario)

	sim, err := hetrta.Simulate(g, hetrta.HeteroPlatform(2), hetrta.BreadthFirst())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("breadth-first response=%d (exceeds the naive bound)\n", sim.Makespan)
	// Output:
	// vol=18 len=8
	// Rhom=13 naive=11 Rhet=12 (scenario 1)
	// breadth-first response=12 (exceeds the naive bound)
}

// Example_schedulability shows the deadline verdicts of both analyses.
func Example_schedulability() {
	g := hetrta.NewGraph()
	pre := g.AddNode("pre", 3, hetrta.Host)
	gpu := g.AddNode("gpu", 9, hetrta.Offload)
	cpu := g.AddNode("cpu", 8, hetrta.Host)
	post := g.AddNode("post", 2, hetrta.Host)
	g.MustAddEdge(pre, gpu)
	g.MustAddEdge(pre, cpu)
	g.MustAddEdge(gpu, post)
	g.MustAddEdge(cpu, post)

	task := hetrta.Task{G: g, Period: 20, Deadline: 16}
	okHom, rhom := task.SchedulableHom(hetrta.HomogeneousPlatform(2))
	okHet, a, err := task.SchedulableHet(hetrta.HeteroPlatform(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Rhom=%.1f schedulable=%v\n", rhom, okHom)
	fmt.Printf("Rhet=%.1f schedulable=%v\n", a.Het.R, okHet)
	// Output:
	// Rhom=18.0 schedulable=false
	// Rhet=14.0 schedulable=true
}
