# Development entry points, mirroring .github/workflows/ci.yml so that
# `make lint` / `make test` / `make bench` reproduce locally exactly what CI
# gates on. staticcheck and govulncheck are skipped (with a notice) when the
# pinned tools are not installed, so the core targets work offline.

GO        ?= go
BIN       := $(CURDIR)/bin
HETRTALINT := $(BIN)/hetrtalint

STATICCHECK_VERSION := 2025.1
GOVULNCHECK_VERSION := v1.1.4

.PHONY: all lint test bench serve chaos fmt vet vettool staticcheck govulncheck tools clean

all: lint test

# --- lint: gofmt + vet + vettool + staticcheck, identical to the CI lint job.

lint: fmt vet vettool staticcheck govulncheck

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The repo's own analyzers (detmap, ctxpoll, boundreg, hotalloc) run as a
# vettool so cross-package facts flow through cmd/go's vet cache.
vettool: $(HETRTALINT)
	$(GO) vet -vettool=$(HETRTALINT) ./...

$(HETRTALINT): FORCE
	@mkdir -p $(BIN)
	$(GO) build -o $(HETRTALINT) ./cmd/hetrtalint

FORCE:

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (make tools to install)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (make tools to install)"; \
	fi

# --- test: the CI race + shuffle matrix.

test:
	$(GO) build ./...
	$(GO) test -race -shuffle=on -count=1 ./...

# --- chaos: the deterministic fault-injection suite, exactly as the CI
# chaos job runs it: resilience primitives, the service chaos invariants,
# and the daemon resilience end-to-end tests, under -race twice; plus the
# parallel exact oracle under -race at 1, 2, and 4 CPUs.

chaos:
	$(GO) test -race -count=2 ./internal/resilience/...
	$(GO) test -race -count=2 -run 'TestChaos|TestFailureNeverCached|TestDroppedCacheAdd|TestForcedCacheMiss|TestExecPanic' ./internal/service
	$(GO) test -race -count=2 -run 'TestShedding|TestDegraded|TestBatchDegraded|TestHandlerPanic|TestGracefulShutdown|TestShutdownGrace|TestBodySize|TestReadyz' ./cmd/dagrtad
	$(GO) test -race -cpu=1,2,4 ./internal/exact

# --- bench: the CI benchmark regression gate against the latest baseline.

bench:
	@baseline=$$(ls BENCH_[0-9]*.json | sort -t_ -k2 -n | tail -1); \
	echo "comparing against $$baseline"; \
	$(GO) run ./cmd/benchreport -out bench_local.json -baseline "$$baseline" -benchtime 2x -threshold 2

# --- serve: the CI load-smoke job — a deterministic dagrtaload mix
# against a live daemon, cold then warm-restarted from the same store
# log, gated by benchreport -serve against BENCH_SERVE_<n>.json.

serve:
	./scripts/serve_smoke.sh

# --- tools: install the pinned external linters (requires network).

tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

clean:
	rm -rf $(BIN) bench_local.json
