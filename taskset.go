package hetrta

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/batch"
	"repro/internal/platform"
	"repro/internal/taskset"
)

// Taskset is a system of sporadic DAG tasks sharing one execution platform;
// SporadicTask is one member τ = <G, T, D, J> (DAG, period, constrained
// deadline, release jitter). Tasksets are the unit the TasksetAnalyzer
// admits.
type Taskset = taskset.Taskset

// SporadicTask is the sporadic DAG task of the taskset model.
type SporadicTask = taskset.SporadicTask

// TasksetFingerprint is a taskset's canonical content hash: insensitive to
// task order and member-graph relabelings, sensitive to every
// analysis-relevant parameter. With TasksetAnalyzer.Signature it forms the
// admission cache key of the serving layer.
type TasksetFingerprint = taskset.Fingerprint

// TasksetPolicy is a pluggable taskset schedulability test (a sufficient
// condition: admission certifies schedulability, rejection proves nothing).
type TasksetPolicy = taskset.Policy

// FederatedPolicy returns the federated-scheduling admission test: heavy
// tasks get minimal dedicated cores proven by the per-DAG bounds (with a
// per-class accelerator budget), light tasks share the remainder.
func FederatedPolicy() TasksetPolicy { return taskset.FederatedPolicy() }

// GlobalPolicy returns the global fixed-priority admission test: a
// response-time iteration with carry-in interference bounds, after the
// global sporadic-DAG analyses of Melani et al., Dinh et al., and
// Dong & Liu.
func GlobalPolicy() TasksetPolicy { return taskset.GlobalPolicy() }

// DefaultTasksetPolicies returns the policies a TasksetAnalyzer runs when
// WithTasksetPolicies is not given: federated and global.
func DefaultTasksetPolicies() []TasksetPolicy {
	return []TasksetPolicy{FederatedPolicy(), GlobalPolicy()}
}

// ErrNoSafeBound is wrapped by per-DAG bound evaluation when no safe,
// applicable bound exists for a task on a probed platform; policies report
// it as a per-task rejection, never a fatal admission error.
var ErrNoSafeBound = taskset.ErrNoSafeBound

// TasksetAnalyzer is the taskset-level counterpart of the Analyzer: wrap a
// per-DAG Analyzer once, then call Admit for one taskset or AdmitBatch for
// many. Each policy consumes the Analyzer's configured per-DAG Bounds
// (evaluated on the platform shapes the policy needs — dedicated-core
// slices for federated, the full platform for global). Immutable after
// construction and safe for concurrent use.
type TasksetAnalyzer struct {
	an          *Analyzer
	policies    []TasksetPolicy
	parallelism int
}

// TasksetOption configures a TasksetAnalyzer at construction time.
type TasksetOption func(*TasksetAnalyzer) error

// WithTasksetPolicies selects the admission policies each AdmitReport
// evaluates, in order. Names must be unique.
func WithTasksetPolicies(ps ...TasksetPolicy) TasksetOption {
	return func(ta *TasksetAnalyzer) error {
		if len(ps) == 0 {
			return fmt.Errorf("hetrta: WithTasksetPolicies needs at least one policy")
		}
		ta.policies = append([]TasksetPolicy(nil), ps...)
		return nil
	}
}

// WithTasksetParallelism sets the AdmitBatch worker-pool size. The default
// (0) is one worker per CPU; 1 forces sequential processing. Output order
// is deterministic at any parallelism.
func WithTasksetParallelism(n int) TasksetOption {
	return func(ta *TasksetAnalyzer) error {
		if n < 0 {
			return fmt.Errorf("hetrta: negative taskset parallelism %d", n)
		}
		ta.parallelism = n
		return nil
	}
}

// NewTasksetAnalyzer builds a TasksetAnalyzer around a per-DAG Analyzer.
// The Analyzer contributes the platform and the bound set; its simulation
// and exact stages are not used by admission.
func NewTasksetAnalyzer(an *Analyzer, opts ...TasksetOption) (*TasksetAnalyzer, error) {
	if an == nil {
		return nil, fmt.Errorf("hetrta: NewTasksetAnalyzer(nil analyzer)")
	}
	ta := &TasksetAnalyzer{an: an, policies: DefaultTasksetPolicies()}
	for _, opt := range opts {
		if err := opt(ta); err != nil {
			return nil, err
		}
	}
	seen := map[string]bool{}
	for _, p := range ta.policies {
		if seen[p.Name()] {
			return nil, fmt.Errorf("hetrta: duplicate taskset policy %q", p.Name())
		}
		seen[p.Name()] = true
	}
	return ta, nil
}

// Platform returns the shared execution platform admissions are tested on.
func (ta *TasksetAnalyzer) Platform() Platform { return ta.an.Platform() }

// Signature returns a stable string identifying every configuration input
// that can influence an AdmitReport: the wrapped Analyzer's signature (its
// platform and bound set feed every per-DAG evaluation) plus the policy
// list. Two TasksetAnalyzers with equal signatures produce byte-identical
// reports for fingerprint-equal tasksets, so (Taskset.Fingerprint,
// Signature) is a sound admission cache key.
func (ta *TasksetAnalyzer) Signature() string {
	var b strings.Builder
	b.WriteString(ta.an.Signature())
	b.WriteString(";tspolicies=")
	for i, p := range ta.policies {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.Name())
	}
	return b.String()
}

// AdmitReport is the JSON-serializable outcome of one Admit call. Tasks and
// all per-task decisions are reported in the taskset's canonical order
// (ascending per-task digest), which makes the report — and therefore the
// serving layer's cached bytes — invariant under permutations of the input
// and relabelings of the member graphs.
type AdmitReport struct {
	// Platform is the shared execution platform.
	Platform Platform `json:"platform"`
	// Fingerprint is the taskset's canonical content hash.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Taskset summarizes the system; Tasks describes each member in
	// canonical order.
	Taskset TasksetSummary     `json:"taskset"`
	Tasks   []AdmitTaskSummary `json:"tasks,omitempty"`
	// Policies holds one verdict per configured policy, in order. Each is
	// a sufficient test, so Admitted is their disjunction: one certifying
	// policy is enough.
	Policies []taskset.PolicyResult `json:"policies,omitempty"`
	Admitted bool                   `json:"admitted"`
	// Err records the per-taskset failure inside an AdmitBatch, which
	// reports errors item-by-item instead of failing the whole batch. A
	// report with Err set has no other fields populated beyond Platform.
	Err string `json:"error,omitempty"`
}

// TasksetSummary captures the taskset's headline metrics.
type TasksetSummary struct {
	// Tasks is the member count; Offloading counts members with at least
	// one offloaded node.
	Tasks      int `json:"tasks"`
	Offloading int `json:"offloading"`
	// Utilization is Σ vol_i/T_i.
	Utilization float64 `json:"utilization"`
}

// AdmitTaskSummary describes one member task (canonical order).
type AdmitTaskSummary struct {
	Task         int     `json:"task"`
	Nodes        int     `json:"nodes"`
	Volume       int64   `json:"volume"`
	CriticalPath int64   `json:"criticalPath"`
	Offloads     int     `json:"offloads"`
	Period       int64   `json:"period"`
	Deadline     int64   `json:"deadline"`
	Jitter       int64   `json:"jitter,omitempty"`
	Utilization  float64 `json:"utilization"`
}

// PolicyReport returns the named policy's verdict, if present.
func (r *AdmitReport) PolicyReport(name string) (taskset.PolicyResult, bool) {
	for _, p := range r.Policies {
		if p.Policy == name {
			return p, true
		}
	}
	return taskset.PolicyResult{}, false
}

// facadeEval adapts the Analyzer's Bound set to the taskset.TaskEval
// interface: platform-independent work (reduction, Algorithm 1) happens
// once at construction, each Bound call evaluates the configured bounds on
// the requested platform and returns the minimum over the safe, applicable
// ones.
type facadeEval struct {
	an    *Analyzer
	work  *Graph
	tr    *Transformation
	multi *MultiTransformation
}

func newFacadeEval(an *Analyzer, g *Graph) (*facadeEval, error) {
	work, multi, err := taskset.PrepareDAG(g)
	if err != nil {
		return nil, err
	}
	e := &facadeEval{an: an, work: work, multi: multi}
	if multi != nil && len(multi.Steps) == 1 {
		e.tr = multi.Steps[0]
	}
	return e, nil
}

func (e *facadeEval) Bound(ctx context.Context, p platform.Platform) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	in := BoundInput{Graph: e.work, Platform: p, Transform: e.tr, Multi: e.multi}
	best := math.Inf(1)
	for _, b := range e.an.bounds {
		res, err := b.Compute(ctx, in)
		if err != nil {
			return 0, fmt.Errorf("hetrta: bound %q: %w", b.Name(), err)
		}
		if res.Skipped != "" || res.Unsafe {
			continue
		}
		// A bound is a report artifact everywhere but enters *admission*
		// minima only per the declared admission-safety table: Rhom is
		// gated to the single-offload model, the naive demo never enters,
		// and an unregistered bound does not certify anything (see
		// taskset.BoundSafety and the boundreg analyzer).
		if !taskset.AdmissionSafe(res.Name, e.work, p) {
			continue
		}
		best = math.Min(best, res.Value)
	}
	if math.IsInf(best, 1) {
		return 0, fmt.Errorf("hetrta: %w on %v", taskset.ErrNoSafeBound, p)
	}
	return best, nil
}

// Admit evaluates every configured policy on one taskset and returns its
// AdmitReport. The input graphs are not modified (analysis runs on reduced
// clones); the report is permutation-invariant (see AdmitReport).
// Cancelling ctx aborts promptly with the context's error.
func (ta *TasksetAnalyzer) Admit(ctx context.Context, ts Taskset) (*AdmitReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	canon := ts.Canonical()
	p := ta.an.Platform()

	rep := &AdmitReport{
		Platform:    p,
		Fingerprint: canon.Fingerprint().String(),
		Taskset: TasksetSummary{
			Tasks:       len(canon.Tasks),
			Utilization: canon.Utilization(),
		},
		Tasks: make([]AdmitTaskSummary, len(canon.Tasks)),
	}
	evals := make([]taskset.TaskEval, len(canon.Tasks))
	for i, t := range canon.Tasks {
		e, err := newFacadeEval(ta.an, t.G)
		if err != nil {
			return nil, fmt.Errorf("hetrta: taskset task %d: %w", i, err)
		}
		evals[i] = e
		offs := len(e.work.OffloadNodes())
		if offs > 0 {
			rep.Taskset.Offloading++
		}
		rep.Tasks[i] = AdmitTaskSummary{
			Task:         i,
			Nodes:        e.work.NumNodes(),
			Volume:       e.work.Volume(),
			CriticalPath: e.work.CriticalPathLength(),
			Offloads:     offs,
			Period:       t.Period,
			Deadline:     t.Deadline,
			Jitter:       t.Jitter,
			Utilization:  t.Utilization(),
		}
	}

	in := taskset.AdmitInput{Set: canon, Platform: p, Evals: evals}
	for _, pol := range ta.policies {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := pol.Admit(ctx, in)
		if err != nil {
			return nil, fmt.Errorf("hetrta: taskset policy %q: %w", pol.Name(), err)
		}
		rep.Policies = append(rep.Policies, *res)
		if res.Admitted {
			rep.Admitted = true
		}
	}
	return rep, nil
}

// AdmitBatch admits many tasksets on the analyzer's worker pool
// (WithTasksetParallelism) and returns one AdmitReport per input, in input
// order — deterministic at any parallelism. Per-taskset failures do not
// abort the batch: the failing taskset's report carries the error in Err.
// The returned error is non-nil only when ctx is cancelled, in which case
// reports of unfinished tasksets record the cancellation.
func (ta *TasksetAnalyzer) AdmitBatch(ctx context.Context, tss []Taskset) ([]*AdmitReport, error) {
	reports := make([]*AdmitReport, len(tss))
	err := batch.Run(ctx, len(tss), ta.parallelism, func(ctx context.Context, i int) error {
		rep, err := ta.Admit(ctx, tss[i])
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				reports[i] = &AdmitReport{Platform: ta.an.platform, Err: ctxErr.Error()}
				return ctxErr
			}
			reports[i] = &AdmitReport{Platform: ta.an.platform, Err: err.Error()}
			return nil
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		for i, r := range reports {
			if r == nil {
				reports[i] = &AdmitReport{Platform: ta.an.platform, Err: err.Error()}
			}
		}
		return reports, err
	}
	return reports, nil
}
