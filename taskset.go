package hetrta

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/batch"
	"repro/internal/platform"
	"repro/internal/taskset"
)

// Taskset is a system of sporadic DAG tasks sharing one execution platform;
// SporadicTask is one member τ = <G, T, D, J> (DAG, period, constrained
// deadline, release jitter). Tasksets are the unit the TasksetAnalyzer
// admits.
type Taskset = taskset.Taskset

// SporadicTask is the sporadic DAG task of the taskset model.
type SporadicTask = taskset.SporadicTask

// TasksetFingerprint is a taskset's canonical content hash: insensitive to
// task order and member-graph relabelings, sensitive to every
// analysis-relevant parameter. With TasksetAnalyzer.Signature it forms the
// admission cache key of the serving layer.
type TasksetFingerprint = taskset.Fingerprint

// ParseTasksetFingerprint parses the lower-case-hex form produced by
// TasksetFingerprint.String.
func ParseTasksetFingerprint(s string) (TasksetFingerprint, error) {
	return taskset.ParseFingerprint(s)
}

// TaskDigest is one task's 256-bit content hash (canonical graph
// fingerprint + sporadic parameters). Digest-equal tasks are
// interchangeable for analysis; digests key per-task eval caches and name
// tasks in TasksetDeltas.
type TaskDigest = taskset.TaskDigest

// ParseTaskDigest parses the lower-case-hex form produced by
// TaskDigest.String.
func ParseTaskDigest(s string) (TaskDigest, error) { return taskset.ParseTaskDigest(s) }

// TasksetFingerprintOfDigests returns the canonical fingerprint of the
// taskset whose member digests are ds, in any order — the same value
// Taskset.Fingerprint computes, without re-hashing any task. The serving
// layer's delta path uses it to derive the resulting set's cache key from
// digest bookkeeping alone.
func TasksetFingerprintOfDigests(ds []TaskDigest) TasksetFingerprint {
	return taskset.FingerprintOfDigests(ds)
}

// TasksetFingerprintFromDigests is TasksetFingerprintOfDigests for digests
// already in canonical (ascending) order — no copy, no sort.
func TasksetFingerprintFromDigests(ds []TaskDigest) TasksetFingerprint {
	return taskset.FingerprintFromDigests(ds)
}

// TasksetDelta is an incremental edit against a base taskset (arrivals,
// digest-named departures, updates); TaskDeltaUpdate is one replacement.
// Applying a delta and re-admitting is byte-equivalent to admitting the
// full resulting set.
type TasksetDelta = taskset.Delta

// TaskDeltaUpdate replaces the task with digest Old by Task.
type TaskDeltaUpdate = taskset.TaskUpdate

// GlobalStepCache memoizes the Global policy's per-task response-time
// fixpoint across AdmitWith calls, keyed on everything the iteration
// depends on, so unchanged tasks of a delta-edited set replay instead of
// re-iterating — bit-identically, including iteration counts. Safe for
// concurrent use.
type GlobalStepCache = taskset.GlobalStepCache

// NewGlobalStepCache returns a step cache holding up to capacity entries
// (<= 0 selects a default).
func NewGlobalStepCache(capacity int) *GlobalStepCache {
	return taskset.NewGlobalStepCache(capacity)
}

// ErrInvalidInput marks errors caused by the caller's input (model
// validation failures, malformed deltas) as opposed to analysis or
// infrastructure faults. Test with errors.Is; serving layers map it to
// 400-class statuses.
var ErrInvalidInput = errors.New("invalid input")

// invalidInput wraps an input-shaped error without changing its message.
type invalidInput struct{ err error }

func (e invalidInput) Error() string { return e.err.Error() }

func (e invalidInput) Unwrap() error { return e.err }

func (e invalidInput) Is(target error) bool { return target == ErrInvalidInput }

// MarkInvalidInput wraps err so errors.Is(err, ErrInvalidInput) holds,
// preserving its message. A nil err returns nil.
func MarkInvalidInput(err error) error {
	if err == nil {
		return nil
	}
	return invalidInput{err: err}
}

// TasksetPolicy is a pluggable taskset schedulability test (a sufficient
// condition: admission certifies schedulability, rejection proves nothing).
type TasksetPolicy = taskset.Policy

// FederatedPolicy returns the federated-scheduling admission test: heavy
// tasks get minimal dedicated cores proven by the per-DAG bounds (with a
// per-class accelerator budget), light tasks share the remainder.
func FederatedPolicy() TasksetPolicy { return taskset.FederatedPolicy() }

// GlobalPolicy returns the global fixed-priority admission test: a
// response-time iteration with carry-in interference bounds, after the
// global sporadic-DAG analyses of Melani et al., Dinh et al., and
// Dong & Liu.
func GlobalPolicy() TasksetPolicy { return taskset.GlobalPolicy() }

// DefaultTasksetPolicies returns the policies a TasksetAnalyzer runs when
// WithTasksetPolicies is not given: federated and global.
func DefaultTasksetPolicies() []TasksetPolicy {
	return []TasksetPolicy{FederatedPolicy(), GlobalPolicy()}
}

// ErrNoSafeBound is wrapped by per-DAG bound evaluation when no safe,
// applicable bound exists for a task on a probed platform; policies report
// it as a per-task rejection, never a fatal admission error.
var ErrNoSafeBound = taskset.ErrNoSafeBound

// TasksetAnalyzer is the taskset-level counterpart of the Analyzer: wrap a
// per-DAG Analyzer once, then call Admit for one taskset or AdmitBatch for
// many. Each policy consumes the Analyzer's configured per-DAG Bounds
// (evaluated on the platform shapes the policy needs — dedicated-core
// slices for federated, the full platform for global). Immutable after
// construction and safe for concurrent use.
type TasksetAnalyzer struct {
	an          *Analyzer
	policies    []TasksetPolicy
	parallelism int
}

// TasksetOption configures a TasksetAnalyzer at construction time.
type TasksetOption func(*TasksetAnalyzer) error

// WithTasksetPolicies selects the admission policies each AdmitReport
// evaluates, in order. Names must be unique.
func WithTasksetPolicies(ps ...TasksetPolicy) TasksetOption {
	return func(ta *TasksetAnalyzer) error {
		if len(ps) == 0 {
			return fmt.Errorf("hetrta: WithTasksetPolicies needs at least one policy")
		}
		ta.policies = append([]TasksetPolicy(nil), ps...)
		return nil
	}
}

// WithTasksetParallelism sets the AdmitBatch worker-pool size. The default
// (0) is one worker per CPU; 1 forces sequential processing. Output order
// is deterministic at any parallelism.
func WithTasksetParallelism(n int) TasksetOption {
	return func(ta *TasksetAnalyzer) error {
		if n < 0 {
			return fmt.Errorf("hetrta: negative taskset parallelism %d", n)
		}
		ta.parallelism = n
		return nil
	}
}

// NewTasksetAnalyzer builds a TasksetAnalyzer around a per-DAG Analyzer.
// The Analyzer contributes the platform and the bound set; its simulation
// and exact stages are not used by admission.
func NewTasksetAnalyzer(an *Analyzer, opts ...TasksetOption) (*TasksetAnalyzer, error) {
	if an == nil {
		return nil, fmt.Errorf("hetrta: NewTasksetAnalyzer(nil analyzer)")
	}
	ta := &TasksetAnalyzer{an: an, policies: DefaultTasksetPolicies()}
	for _, opt := range opts {
		if err := opt(ta); err != nil {
			return nil, err
		}
	}
	seen := map[string]bool{}
	for _, p := range ta.policies {
		if seen[p.Name()] {
			return nil, fmt.Errorf("hetrta: duplicate taskset policy %q", p.Name())
		}
		seen[p.Name()] = true
	}
	return ta, nil
}

// Platform returns the shared execution platform admissions are tested on.
func (ta *TasksetAnalyzer) Platform() Platform { return ta.an.Platform() }

// Signature returns a stable string identifying every configuration input
// that can influence an AdmitReport: the wrapped Analyzer's signature (its
// platform and bound set feed every per-DAG evaluation) plus the policy
// list. Two TasksetAnalyzers with equal signatures produce byte-identical
// reports for fingerprint-equal tasksets, so (Taskset.Fingerprint,
// Signature) is a sound admission cache key.
func (ta *TasksetAnalyzer) Signature() string {
	var b strings.Builder
	b.WriteString(ta.an.Signature())
	b.WriteString(";tspolicies=")
	for i, p := range ta.policies {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.Name())
	}
	return b.String()
}

// AdmitReport is the JSON-serializable outcome of one Admit call. Tasks and
// all per-task decisions are reported in the taskset's canonical order
// (ascending per-task digest), which makes the report — and therefore the
// serving layer's cached bytes — invariant under permutations of the input
// and relabelings of the member graphs.
type AdmitReport struct {
	// Platform is the shared execution platform.
	Platform Platform `json:"platform"`
	// Fingerprint is the taskset's canonical content hash.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Taskset summarizes the system; Tasks describes each member in
	// canonical order.
	Taskset TasksetSummary     `json:"taskset"`
	Tasks   []AdmitTaskSummary `json:"tasks,omitempty"`
	// Policies holds one verdict per configured policy, in order. Each is
	// a sufficient test, so Admitted is their disjunction: one certifying
	// policy is enough.
	Policies []taskset.PolicyResult `json:"policies,omitempty"`
	Admitted bool                   `json:"admitted"`
	// Err records the per-taskset failure inside an AdmitBatch, which
	// reports errors item-by-item instead of failing the whole batch. A
	// report with Err set has no other fields populated beyond Platform.
	Err string `json:"error,omitempty"`
}

// TasksetSummary captures the taskset's headline metrics.
type TasksetSummary struct {
	// Tasks is the member count; Offloading counts members with at least
	// one offloaded node.
	Tasks      int `json:"tasks"`
	Offloading int `json:"offloading"`
	// Utilization is Σ vol_i/T_i.
	Utilization float64 `json:"utilization"`
}

// AdmitTaskSummary describes one member task (canonical order).
type AdmitTaskSummary struct {
	Task         int     `json:"task"`
	Nodes        int     `json:"nodes"`
	Volume       int64   `json:"volume"`
	CriticalPath int64   `json:"criticalPath"`
	Offloads     int     `json:"offloads"`
	Period       int64   `json:"period"`
	Deadline     int64   `json:"deadline"`
	Jitter       int64   `json:"jitter,omitempty"`
	Utilization  float64 `json:"utilization"`
}

// PolicyReport returns the named policy's verdict, if present.
func (r *AdmitReport) PolicyReport(name string) (taskset.PolicyResult, bool) {
	for _, p := range r.Policies {
		if p.Policy == name {
			return p, true
		}
	}
	return taskset.PolicyResult{}, false
}

// facadeEval adapts the Analyzer's Bound set to the taskset.TaskEval
// interface: platform-independent work (reduction, Algorithm 1) happens
// once at construction, each Bound call evaluates the configured bounds on
// the requested platform and returns the minimum over the safe, applicable
// ones.
type facadeEval struct {
	an    *Analyzer
	work  *Graph
	tr    *Transformation
	multi *MultiTransformation
}

func newFacadeEval(an *Analyzer, g *Graph) (*facadeEval, error) {
	work, multi, err := taskset.PrepareDAG(g)
	if err != nil {
		return nil, err
	}
	e := &facadeEval{an: an, work: work, multi: multi}
	if multi != nil && len(multi.Steps) == 1 {
		e.tr = multi.Steps[0]
	}
	return e, nil
}

func (e *facadeEval) Bound(ctx context.Context, p platform.Platform) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	in := BoundInput{Graph: e.work, Platform: p, Transform: e.tr, Multi: e.multi}
	best := math.Inf(1)
	for _, b := range e.an.bounds {
		res, err := b.Compute(ctx, in)
		if err != nil {
			return 0, fmt.Errorf("hetrta: bound %q: %w", b.Name(), err)
		}
		if res.Skipped != "" || res.Unsafe {
			continue
		}
		// A bound is a report artifact everywhere but enters *admission*
		// minima only per the declared admission-safety table: Rhom is
		// gated to the single-offload model, the naive demo never enters,
		// and an unregistered bound does not certify anything (see
		// taskset.BoundSafety and the boundreg analyzer).
		if !taskset.AdmissionSafe(res.Name, e.work, p) {
			continue
		}
		best = math.Min(best, res.Value)
	}
	if math.IsInf(best, 1) {
		return 0, fmt.Errorf("hetrta: %w on %v", taskset.ErrNoSafeBound, p)
	}
	return best, nil
}

// TaskEvalHandle is one task's reusable evaluation state: the
// platform-independent preparation (transitive reduction, Algorithm 1) done
// once, the report summary precomputed, and every Bound probe memoized per
// platform shape. Handles are what delta admission shares across calls —
// re-admitting a set whose task was already evaluated replays the memoized
// bounds instead of re-running the analyses, bit-identically (bounds are
// pure functions of the reduced graph and the platform's class counts).
// Safe for concurrent use; obtain one from PrepareTaskEval.
type TaskEvalHandle struct {
	eval *facadeEval

	// Report summary of the reduced graph, fixed at construction.
	nodes        int
	offloads     int
	volume       int64
	criticalPath int64

	mu   sync.Mutex
	memo map[string]evalBound
	vols map[string][]float64
}

// evalBound is one memoized Bound outcome: either a value or the
// deterministic no-safe-bound rejection (reconstructed with the probed
// platform so the message matches a fresh evaluation byte-for-byte). Other
// errors — cancellations, analysis faults — are never memoized.
type evalBound struct {
	v      float64
	noSafe bool
}

// Bound implements taskset.TaskEval with per-platform-shape memoization.
// The memo key is the platform's class-count vector: bound values depend
// only on machine counts, never on class names.
func (h *TaskEvalHandle) Bound(ctx context.Context, p platform.Platform) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var kb [32]byte
	key := platformCountsKey(kb[:0], p)
	h.mu.Lock()
	defer h.mu.Unlock()
	// string(key) in the index expression compiles to an allocation-free
	// lookup — the memo hit, which every warm admission takes once per
	// task, builds its key entirely on the stack.
	if b, ok := h.memo[string(key)]; ok {
		if b.noSafe {
			return 0, fmt.Errorf("hetrta: %w on %v", taskset.ErrNoSafeBound, p)
		}
		return b.v, nil
	}
	v, err := h.eval.Bound(ctx, p)
	if err != nil {
		if errors.Is(err, taskset.ErrNoSafeBound) {
			h.memo[string(key)] = evalBound{noSafe: true}
		}
		return 0, err
	}
	h.memo[string(key)] = evalBound{v: v}
	return v, nil
}

// ClassVolumes implements taskset.ClassVolumeSource with the same
// per-platform-shape memoization as Bound. Sums run over the reduced work
// graph; transitive reduction drops only edges, so the per-node WCETs and
// classes — and therefore the bucketed sums — are those of the input graph.
func (h *TaskEvalHandle) ClassVolumes(p platform.Platform) []float64 {
	var kb [32]byte
	key := platformCountsKey(kb[:0], p)
	h.mu.Lock()
	defer h.mu.Unlock()
	if v, ok := h.vols[string(key)]; ok {
		return v
	}
	nC := p.NumClasses()
	v := make([]float64, nC)
	for n := range h.eval.work.EachNode() {
		c := n.Class
		if c < 1 || c >= nC || p.Count(c) < 1 {
			c = 0
		}
		v[c] += float64(n.WCET)
	}
	h.vols[string(key)] = v
	return v
}

// platformCountsKey appends the class-count vector ("4" host-only,
// "4+1+2" host plus devices) to buf. Unlike Platform.String it ignores
// class names, which never enter bound math. Callers pass a stack buffer
// and index the memo maps with string(key), which the compiler turns into
// an allocation-free lookup.
func platformCountsKey(buf []byte, p platform.Platform) []byte {
	b := strconv.AppendInt(buf, int64(p.Cores()), 10)
	for c := 1; c < p.NumClasses(); c++ {
		b = append(b, '+')
		b = strconv.AppendInt(b, int64(p.Count(c)), 10)
	}
	return b
}

// PrepareTaskEval builds the reusable evaluation handle for one task graph:
// clone, transitive reduction, Algorithm 1 when offloads exist, and the
// report summary. The input graph is not modified or retained.
func (ta *TasksetAnalyzer) PrepareTaskEval(g *Graph) (*TaskEvalHandle, error) {
	e, err := newFacadeEval(ta.an, g)
	if err != nil {
		return nil, err
	}
	return &TaskEvalHandle{
		eval:         e,
		nodes:        e.work.NumNodes(),
		offloads:     len(e.work.OffloadNodes()),
		volume:       e.work.Volume(),
		criticalPath: e.work.CriticalPathLength(),
		memo:         make(map[string]evalBound),
		vols:         make(map[string][]float64),
	}, nil
}

// TaskEvalSource supplies the evaluation handle for one (canonical) task —
// freshly prepared, or recovered from a cache keyed by the digest. It is
// called once per task in canonical order.
type TaskEvalSource func(ctx context.Context, t SporadicTask, digest TaskDigest) (*TaskEvalHandle, error)

// Admit evaluates every configured policy on one taskset and returns its
// AdmitReport. The input graphs are not modified (analysis runs on reduced
// clones); the report is permutation-invariant (see AdmitReport).
// Cancelling ctx aborts promptly with the context's error. Validation
// failures satisfy errors.Is(err, ErrInvalidInput).
func (ta *TasksetAnalyzer) Admit(ctx context.Context, ts Taskset) (*AdmitReport, error) {
	return ta.AdmitWith(ctx, ts, func(ctx context.Context, t SporadicTask, _ TaskDigest) (*TaskEvalHandle, error) {
		return ta.PrepareTaskEval(t.G)
	}, nil)
}

// AdmitWith is Admit with the per-task evaluation source and the Global
// fixpoint memo pluggable — the incremental path under delta admission.
// With a source that returns cached handles and a shared step cache, only
// the delta's tasks pay for bound evaluation and only tasks whose
// interfering set changed re-run the response-time iteration; the report is
// byte-identical to a from-scratch Admit of the same set either way,
// because handles memoize pure per-platform values and the step cache
// replays iterations (counts included) keyed on their full inputs.
func (ta *TasksetAnalyzer) AdmitWith(ctx context.Context, ts Taskset, src TaskEvalSource, steps *GlobalStepCache) (*AdmitReport, error) {
	return ta.AdmitPrepared(ctx, ts, nil, src, steps)
}

// AdmitPrepared is AdmitWith with the per-task digests (parallel to
// ts.Tasks) optionally precomputed — the delta path resolves them from its
// base entry's bookkeeping, so canonicalization re-hashes nothing. A nil or
// mismatched-length ds is computed from scratch.
func (ta *TasksetAnalyzer) AdmitPrepared(ctx context.Context, ts Taskset, ds []TaskDigest, src TaskEvalSource, steps *GlobalStepCache) (*AdmitReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := ts.Validate(); err != nil {
		return nil, MarkInvalidInput(err)
	}
	var canon Taskset
	var digests []TaskDigest
	if len(ds) == len(ts.Tasks) {
		canon, digests = ts.CanonicalWithGivenDigests(ds)
	} else {
		canon, digests = ts.CanonicalWithDigests()
	}
	p := ta.an.Platform()

	rep := &AdmitReport{
		Platform:    p,
		Fingerprint: taskset.FingerprintFromDigests(digests).String(),
		Taskset: TasksetSummary{
			Tasks: len(canon.Tasks),
		},
		Tasks: make([]AdmitTaskSummary, len(canon.Tasks)),
	}
	evals := make([]taskset.TaskEval, len(canon.Tasks))
	// utils are computed once here and shared with the policies (and the
	// total below) — each Utilization() call takes the graph property lock,
	// and the policies would otherwise repeat it per decision. Summing in
	// canonical order is exactly what canon.Utilization() does, so the
	// total is bit-identical.
	utils := make([]float64, len(canon.Tasks))
	for i, t := range canon.Tasks {
		h, err := src(ctx, t, digests[i])
		if err != nil {
			return nil, fmt.Errorf("hetrta: taskset task %d: %w", i, err)
		}
		evals[i] = h
		if h.offloads > 0 {
			rep.Taskset.Offloading++
		}
		utils[i] = t.Utilization()
		rep.Taskset.Utilization += utils[i]
		rep.Tasks[i] = AdmitTaskSummary{
			Task:         i,
			Nodes:        h.nodes,
			Volume:       h.volume,
			CriticalPath: h.criticalPath,
			Offloads:     h.offloads,
			Period:       t.Period,
			Deadline:     t.Deadline,
			Jitter:       t.Jitter,
			Utilization:  utils[i],
		}
	}

	in := taskset.AdmitInput{Set: canon, Platform: p, Evals: evals, Digests: digests, GlobalSteps: steps, Utils: utils}
	for _, pol := range ta.policies {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := pol.Admit(ctx, in)
		if err != nil {
			return nil, fmt.Errorf("hetrta: taskset policy %q: %w", pol.Name(), err)
		}
		rep.Policies = append(rep.Policies, *res)
		if res.Admitted {
			rep.Admitted = true
		}
	}
	return rep, nil
}

// AdmitBatch admits many tasksets on the analyzer's worker pool
// (WithTasksetParallelism) and returns one AdmitReport per input, in input
// order — deterministic at any parallelism. Per-taskset failures do not
// abort the batch: the failing taskset's report carries the error in Err.
// The returned error is non-nil only when ctx is cancelled, in which case
// reports of unfinished tasksets record the cancellation.
func (ta *TasksetAnalyzer) AdmitBatch(ctx context.Context, tss []Taskset) ([]*AdmitReport, error) {
	reports := make([]*AdmitReport, len(tss))
	err := batch.Run(ctx, len(tss), ta.parallelism, func(ctx context.Context, i int) error {
		rep, err := ta.Admit(ctx, tss[i])
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				reports[i] = &AdmitReport{Platform: ta.an.platform, Err: ctxErr.Error()}
				return ctxErr
			}
			reports[i] = &AdmitReport{Platform: ta.an.platform, Err: err.Error()}
			return nil
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		for i, r := range reports {
			if r == nil {
				reports[i] = &AdmitReport{Platform: ta.an.platform, Err: err.Error()}
			}
		}
		return reports, err
	}
	return reports, nil
}
