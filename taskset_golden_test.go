package hetrta

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The golden files pin the AdmitReport JSON wire format served by
// POST /v1/admit and cached byte-identically by the serving layer. A diff
// here means the admission wire format changed: deliberate changes
// regenerate with `go test -run TestAdmitReportGolden -update .`;
// accidental ones are regressions. (The -update flag is shared with
// TestReportGolden.)
func TestAdmitReportGolden(t *testing.T) {
	// Hand-built graphs so the fixtures are tiny and readable.
	hetTask := func(cOff int64, period int64) SporadicTask {
		g := NewGraph()
		load := g.AddNode("load", 2, Host)
		kern := g.AddNode("kernel", cOff, Offload)
		side := g.AddNode("side", 5, Host)
		post := g.AddNode("post", 3, Host)
		g.MustAddEdge(load, kern)
		g.MustAddEdge(load, side)
		g.MustAddEdge(kern, post)
		g.MustAddEdge(side, post)
		return SporadicTask{G: g, Period: period, Deadline: period}
	}
	hostTask := func(wcet, period, deadline, jitter int64) SporadicTask {
		g := NewGraph()
		a := g.AddNode("a", wcet, Host)
		b := g.AddNode("b", wcet, Host)
		c := g.AddNode("c", wcet, Host)
		g.MustAddEdge(a, b)
		g.MustAddEdge(a, c)
		d := g.AddNode("d", wcet, Host)
		g.MustAddEdge(b, d)
		g.MustAddEdge(c, d)
		return SporadicTask{G: g, Period: period, Deadline: deadline, Jitter: jitter}
	}

	cases := []struct {
		name string
		ts   Taskset
	}{
		{
			// A schedulable mix: one heavy offloading task, two light host
			// tasks (one with jitter).
			name: "admit_accept",
			ts: Taskset{Tasks: []SporadicTask{
				hetTask(8, 14),         // U ≈ 1.3: heavy, device-backed
				hostTask(3, 60, 40, 0), // U = 0.2
				hostTask(2, 80, 50, 5), // U = 0.1, jittered
			}},
		},
		{
			// Unschedulable: a deadline below the critical path defeats
			// every policy.
			name: "admit_reject",
			ts: Taskset{Tasks: []SporadicTask{
				hostTask(20, 70, 50, 0), // critical path 60 > D = 50
				hetTask(8, 14),
			}},
		},
	}

	an, err := NewAnalyzer(
		WithPlatform(HeteroPlatform(4)),
		WithBounds(RhomBound(), RhetBound(), TypedRhomBound()),
	)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := NewTasksetAnalyzer(an)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := ta.Admit(context.Background(), tc.ts)
			if err != nil {
				t.Fatal(err)
			}
			if wantAdmit := tc.name == "admit_accept"; rep.Admitted != wantAdmit {
				t.Fatalf("admitted = %v, want %v (%+v)", rep.Admitted, wantAdmit, rep.Policies)
			}
			got, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with: go test -run TestAdmitReportGolden -update .)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("admit report JSON drifted from %s (regenerate with -update if deliberate)\ngot:\n%s\nwant:\n%s",
					path, got, want)
			}

			// The wire format must round-trip losslessly.
			var back AdmitReport
			if err := json.Unmarshal(got, &back); err != nil {
				t.Fatal(err)
			}
			again, err := json.MarshalIndent(&back, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			again = append(again, '\n')
			if !bytes.Equal(got, again) {
				t.Errorf("admit report JSON does not round-trip:\nfirst:\n%s\nsecond:\n%s", got, again)
			}
		})
	}
}
