package hetrta_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	hetrta "repro"
)

func TestAnalyzerFig1Report(t *testing.T) {
	g := buildFig1(t)
	an, err := hetrta.NewAnalyzer(
		hetrta.WithPlatform(hetrta.HeteroPlatform(2)),
		hetrta.WithBounds(hetrta.RhomBound(), hetrta.RhetBound(), hetrta.NaiveBound(), hetrta.TypedRhomBound()),
		hetrta.WithPolicy(hetrta.BreadthFirst),
		hetrta.WithExactBudget(0),
		hetrta.WithValidation(hetrta.PaperModel()),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.Analyze(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Graph.Volume != 18 || rep.Graph.CriticalPath != 8 {
		t.Errorf("graph summary vol=%d len=%d, want 18/8", rep.Graph.Volume, rep.Graph.CriticalPath)
	}
	if rep.Graph.Offload == nil || rep.Graph.Offload.COff != 4 {
		t.Errorf("offload summary %+v, want COff=4", rep.Graph.Offload)
	}

	rhom, ok := rep.BoundValue("rhom")
	if !ok || math.Abs(rhom-13) > 1e-9 {
		t.Errorf("rhom = %v (ok=%v), want 13", rhom, ok)
	}
	rhet, ok := rep.BoundValue("rhet")
	if !ok || math.Abs(rhet-12) > 1e-9 {
		t.Errorf("rhet = %v (ok=%v), want 12", rhet, ok)
	}
	if b, _ := rep.Bound("rhet"); b.Scenario != "scenario 1" {
		t.Errorf("rhet scenario = %q, want scenario 1", b.Scenario)
	}
	naive, _ := rep.Bound("naive")
	if !naive.Unsafe || math.Abs(naive.Value-11) > 1e-9 {
		t.Errorf("naive = %+v, want Unsafe value 11", naive)
	}
	if _, ok := rep.BoundValue("typed-rhom"); !ok {
		t.Error("typed-rhom missing")
	}

	if rep.Transform == nil || rep.TransformResult == nil {
		t.Fatal("transformation missing from report")
	}
	if rep.Transform.LenPrime != 10 {
		t.Errorf("len(G') = %d, want 10", rep.Transform.LenPrime)
	}
	if err := hetrta.CheckTransform(rep.TransformResult); err != nil {
		t.Errorf("transform check: %v", err)
	}

	if rep.Simulation == nil || rep.Simulation.Makespan != 12 {
		t.Errorf("simulation = %+v, want makespan 12", rep.Simulation)
	}
	if rep.Exact == nil || rep.Exact.Makespan != 9 || rep.Exact.Status != "optimal" {
		t.Errorf("exact = %+v, want optimal 9", rep.Exact)
	}

	// Schedulability helper: Rhet certifies D=12, Rhom does not; the unsafe
	// naive bound certifies nothing.
	if s, ok := rep.Schedulable("rhet", 12); !ok || !s {
		t.Errorf("Schedulable(rhet, 12) = %v/%v", s, ok)
	}
	if s, ok := rep.Schedulable("rhom", 12); !ok || s {
		t.Errorf("Schedulable(rhom, 12) = %v/%v", s, ok)
	}
	if _, ok := rep.Schedulable("naive", 12); ok {
		t.Error("unsafe bound certified a deadline")
	}

	// The report is JSON-serializable and round-trips its headline numbers.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back hetrta.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if v, ok := back.BoundValue("rhet"); !ok || math.Abs(v-12) > 1e-9 {
		t.Errorf("round-tripped rhet = %v", v)
	}
	if back.Exact == nil || back.Exact.Makespan != 9 {
		t.Errorf("round-tripped exact = %+v", back.Exact)
	}
}

func TestAnalyzerDoesNotMutateInput(t *testing.T) {
	// A graph with a redundant edge: the Analyzer must reduce its own clone.
	g := hetrta.NewGraph()
	a := g.AddNode("a", 1, hetrta.Host)
	b := g.AddNode("b", 2, hetrta.Host)
	c := g.AddNode("c", 3, hetrta.Offload)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)
	g.MustAddEdge(a, c) // redundant
	edgesBefore := g.NumEdges()

	an, err := hetrta.NewAnalyzer(hetrta.WithPlatform(hetrta.HeteroPlatform(2)))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.Analyze(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != edgesBefore {
		t.Errorf("input graph mutated: %d edges, had %d", g.NumEdges(), edgesBefore)
	}
	if rep.Graph.ReducedEdges != 1 || rep.Graph.Edges != edgesBefore-1 {
		t.Errorf("reduction not reported: %+v", rep.Graph)
	}
}

func TestAnalyzerHomogeneousGraphSkipsRhet(t *testing.T) {
	g := hetrta.NewGraph()
	a := g.AddNode("a", 3, hetrta.Host)
	b := g.AddNode("b", 5, hetrta.Host)
	g.MustAddEdge(a, b)

	an, err := hetrta.NewAnalyzer(hetrta.WithPlatform(hetrta.HeteroPlatform(2)))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.Analyze(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.BoundValue("rhom"); !ok {
		t.Error("rhom missing on homogeneous graph")
	}
	if rhet, _ := rep.Bound("rhet"); rhet.Skipped == "" {
		t.Errorf("rhet not skipped on homogeneous graph: %+v", rhet)
	}
	if rep.Transform != nil {
		t.Error("transformation reported for homogeneous graph")
	}
}

func TestAnalyzerOptionValidation(t *testing.T) {
	bad := [][]hetrta.Option{
		{hetrta.WithPlatform(hetrta.NewPlatform(hetrta.ResourceClass{Name: "host", Count: 0}, hetrta.ResourceClass{Name: "dev", Count: 1}))},
		{hetrta.WithDevices(-1)},
		{hetrta.WithParallelism(-2)},
		{hetrta.WithExactBudget(-5)},
		{hetrta.WithPolicy(nil)},
		{hetrta.WithBounds()},
		{hetrta.WithBounds(hetrta.RhomBound(), hetrta.RhomBound())},
	}
	for i, opts := range bad {
		if _, err := hetrta.NewAnalyzer(opts...); err == nil {
			t.Errorf("bad option set %d accepted", i)
		}
	}
	// WithDevices overrides the platform regardless of option order.
	an, err := hetrta.NewAnalyzer(
		hetrta.WithDevices(3),
		hetrta.WithPlatform(hetrta.HeteroPlatform(8)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if p := an.Platform(); p.Cores() != 8 || p.Devices() != 3 {
		t.Errorf("platform = %v, want m=8+3dev", p)
	}
}

// countingBound demonstrates the pluggable Bound surface.
type countingBound struct{ calls *int }

func (countingBound) Name() string { return "count" }
func (b countingBound) Compute(_ context.Context, in hetrta.BoundInput) (hetrta.BoundResult, error) {
	*b.calls++
	return hetrta.BoundResult{Name: "count", Value: float64(in.Graph.Volume())}, nil
}

func TestAnalyzerCustomBound(t *testing.T) {
	calls := 0
	an, err := hetrta.NewAnalyzer(
		hetrta.WithPlatform(hetrta.HeteroPlatform(2)),
		hetrta.WithBounds(countingBound{&calls}),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.Analyze(context.Background(), buildFig1(t))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("custom bound called %d times", calls)
	}
	if v, ok := rep.BoundValue("count"); !ok || v != 18 {
		t.Errorf("custom bound value %v (ok=%v), want 18", v, ok)
	}
}

func TestAnalyzeBatchDeterministicOrder(t *testing.T) {
	gen, err := hetrta.NewGenerator(hetrta.SmallTasks(8, 30), 11)
	if err != nil {
		t.Fatal(err)
	}
	var graphs []*hetrta.Graph
	for i := 0; i < 60; i++ {
		g, _, _, err := gen.HetTask(0.05 + 0.5*float64(i)/60)
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
	}

	run := func(parallelism int) []byte {
		an, err := hetrta.NewAnalyzer(
			hetrta.WithPlatform(hetrta.HeteroPlatform(4)),
			hetrta.WithBounds(hetrta.RhomBound(), hetrta.RhetBound(), hetrta.TypedRhomBound()),
			hetrta.WithPolicy(hetrta.BreadthFirst),
			hetrta.WithParallelism(parallelism),
		)
		if err != nil {
			t.Fatal(err)
		}
		reports, err := an.AnalyzeBatch(context.Background(), graphs)
		if err != nil {
			t.Fatal(err)
		}
		if len(reports) != len(graphs) {
			t.Fatalf("got %d reports for %d graphs", len(reports), len(graphs))
		}
		data, err := json.Marshal(reports)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	serial := run(1)
	for _, p := range []int{2, 8} {
		if got := run(p); string(got) != string(serial) {
			t.Fatalf("parallelism %d produced different batch output", p)
		}
	}
}

func TestAnalyzeBatchPerItemErrors(t *testing.T) {
	good := buildFig1(t)
	cyclic := hetrta.NewGraph()
	a := cyclic.AddNode("a", 1, hetrta.Host)
	b := cyclic.AddNode("b", 1, hetrta.Host)
	cyclic.MustAddEdge(a, b)
	cyclic.MustAddEdge(b, a)

	an, err := hetrta.NewAnalyzer(hetrta.WithPlatform(hetrta.HeteroPlatform(2)))
	if err != nil {
		t.Fatal(err)
	}
	reports, err := an.AnalyzeBatch(context.Background(), []*hetrta.Graph{good, cyclic, good})
	if err != nil {
		t.Fatalf("batch failed outright: %v", err)
	}
	if reports[0].Err != "" || reports[2].Err != "" {
		t.Errorf("good graphs got errors: %q / %q", reports[0].Err, reports[2].Err)
	}
	if reports[1].Err == "" {
		t.Error("cyclic graph produced no error")
	}
	if v, ok := reports[0].BoundValue("rhet"); !ok || math.Abs(v-12) > 1e-9 {
		t.Errorf("good report rhet = %v", v)
	}
}

func TestAnalyzeCancelledMidExact(t *testing.T) {
	// A large instance whose exact search would run far past the deadline:
	// cancelling the context must abort Analyze promptly with the context's
	// error, per the Analyzer contract.
	gen, err := hetrta.NewGenerator(hetrta.SmallTasks(40, 64), 3)
	if err != nil {
		t.Fatal(err)
	}
	g, _, _, err := gen.HetTask(0.15)
	if err != nil {
		t.Fatal(err)
	}
	an, err := hetrta.NewAnalyzer(
		hetrta.WithPlatform(hetrta.HeteroPlatform(2)),
		hetrta.WithExactBudget(1<<40),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := an.Analyze(ctx, g)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled (or nil if it finished first)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Analyze did not return after cancellation")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("not prompt: %v", elapsed)
	}
}

func TestAnalyzeBatchCancellation(t *testing.T) {
	gen, err := hetrta.NewGenerator(hetrta.SmallTasks(20, 40), 5)
	if err != nil {
		t.Fatal(err)
	}
	var graphs []*hetrta.Graph
	for i := 0; i < 200; i++ {
		g, _, _, err := gen.HetTask(0.2)
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	an, err := hetrta.NewAnalyzer(
		hetrta.WithPlatform(hetrta.HeteroPlatform(2)),
		hetrta.WithParallelism(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reports, err := an.AnalyzeBatch(ctx, graphs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(reports) != len(graphs) {
		t.Fatalf("got %d report slots, want %d", len(reports), len(graphs))
	}
	for i, r := range reports {
		if r == nil {
			t.Fatalf("report %d is nil", i)
		}
	}
}

// TestAnalyzerMultiOffloadReport: a graph with several offload nodes gets a
// full report — per-offload transform summaries, an explicit Rhet skip
// reason, a typed bound, and a simulation of the fully transformed graph —
// so batch consumers can distinguish "homogeneous" from "multi-offload".
func TestAnalyzerMultiOffloadReport(t *testing.T) {
	gen, err := hetrta.NewGenerator(hetrta.SmallTasks(12, 40), 99)
	if err != nil {
		t.Fatal(err)
	}
	g, offs, _, err := gen.MultiHetTask(3, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	an, err := hetrta.NewAnalyzer(
		hetrta.WithPlatform(hetrta.NewPlatform(
			hetrta.ResourceClass{Name: "host", Count: 4},
			hetrta.ResourceClass{Name: "gpu", Count: 1},
			hetrta.ResourceClass{Name: "fpga", Count: 1},
		)),
		hetrta.WithBounds(hetrta.RhomBound(), hetrta.RhetBound(), hetrta.TypedRhomBound()),
		hetrta.WithPolicy(hetrta.BreadthFirst),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.Analyze(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Graph.Offloads != 3 || rep.Graph.Offload != nil {
		t.Errorf("graph summary: offloads=%d offload=%+v", rep.Graph.Offloads, rep.Graph.Offload)
	}
	if len(rep.Transforms) != 3 || rep.MultiTransformResult == nil {
		t.Fatalf("per-offload transforms missing: %d summaries", len(rep.Transforms))
	}
	if rep.Transform != nil || rep.TransformResult != nil {
		t.Error("single-offload transform populated on a multi-offload task")
	}
	summarized := map[int]bool{}
	for _, st := range rep.Transforms {
		summarized[st.Offload] = true
		if st.COff != g.WCET(st.Offload) || st.Class != g.Class(st.Offload) {
			t.Errorf("step %+v does not match node %d", st, st.Offload)
		}
		if gate, ok := rep.MultiTransformResult.Syncs[st.Offload]; !ok || gate != st.Gate {
			t.Errorf("step gate %d disagrees with Syncs[%d]=%d", st.Gate, st.Offload, gate)
		}
	}
	for _, v := range offs {
		if !summarized[v] {
			t.Errorf("offload %d has no transform summary", v)
		}
	}
	if rhet, _ := rep.Bound("rhet"); rhet.Skipped == "" {
		t.Errorf("rhet not skipped with a reason on a multi-offload task: %+v", rhet)
	}
	if _, ok := rep.BoundValue("typed-rhom"); !ok {
		t.Error("typed-rhom missing on a multi-offload task")
	}
	if rep.Simulation == nil || rep.Simulation.MakespanTransformed == 0 {
		t.Errorf("transformed simulation missing: %+v", rep.Simulation)
	}
	if err := hetrta.CheckTransformAll(rep.MultiTransformResult.Original, rep.MultiTransformResult); err != nil {
		t.Errorf("transform-all check: %v", err)
	}
	// JSON round trip keeps the per-offload summaries.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back hetrta.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Transforms) != 3 {
		t.Errorf("round-tripped %d transform summaries", len(back.Transforms))
	}
}

// TestAnalyzerSkipsBoundsOnMissingClass: a node whose device class has no
// machine must skip Rhet and TypedRhom with a reason naming the class, not
// silently produce a wrong number.
func TestAnalyzerSkipsBoundsOnMissingClass(t *testing.T) {
	g := hetrta.NewGraph()
	a := g.AddNode("a", 2, hetrta.Host)
	b := g.AddNode("b", 5, hetrta.Offload)
	g.SetClass(b, 2) // class the platform below does not have
	c := g.AddNode("c", 3, hetrta.Host)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)

	an, err := hetrta.NewAnalyzer(
		hetrta.WithPlatform(hetrta.HeteroPlatform(2)),
		hetrta.WithBounds(hetrta.RhomBound(), hetrta.RhetBound(), hetrta.TypedRhomBound()),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.Analyze(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.BoundValue("rhom"); !ok {
		t.Error("rhom must still apply (it ignores devices)")
	}
	for _, name := range []string{"rhet", "typed-rhom"} {
		bd, found := rep.Bound(name)
		if !found || bd.Skipped == "" {
			t.Errorf("%s not skipped: %+v", name, bd)
			continue
		}
		if !strings.Contains(bd.Skipped, "class 2") {
			t.Errorf("%s skip reason %q does not name the missing class", name, bd.Skipped)
		}
	}
}

// TestAnalyzeBatchErrorSlotsDeterministic: invalid graphs mid-batch yield
// per-item Report.Err, and the full batch output — including the error
// slots — is identical at parallelism 1 and N.
func TestAnalyzeBatchErrorSlotsDeterministic(t *testing.T) {
	gen, err := hetrta.NewGenerator(hetrta.SmallTasks(8, 30), 23)
	if err != nil {
		t.Fatal(err)
	}
	cyclic := hetrta.NewGraph()
	ca := cyclic.AddNode("a", 1, hetrta.Host)
	cb := cyclic.AddNode("b", 1, hetrta.Host)
	cyclic.MustAddEdge(ca, cb)
	cyclic.MustAddEdge(cb, ca)

	var graphs []*hetrta.Graph
	for i := 0; i < 24; i++ {
		if i%5 == 2 {
			graphs = append(graphs, cyclic)
			continue
		}
		if i%7 == 3 {
			graphs = append(graphs, nil)
			continue
		}
		g, _, _, err := gen.HetTask(0.2)
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
	}

	run := func(parallelism int) []byte {
		an, err := hetrta.NewAnalyzer(
			hetrta.WithPlatform(hetrta.HeteroPlatform(2)),
			hetrta.WithParallelism(parallelism),
		)
		if err != nil {
			t.Fatal(err)
		}
		reports, err := an.AnalyzeBatch(context.Background(), graphs)
		if err != nil {
			t.Fatalf("batch failed outright: %v", err)
		}
		for i, rep := range reports {
			wantErr := i%5 == 2 || i%7 == 3
			if (rep.Err != "") != wantErr {
				t.Fatalf("parallelism %d: slot %d Err=%q, want error=%v", parallelism, i, rep.Err, wantErr)
			}
			if wantErr && len(rep.Bounds) != 0 {
				t.Fatalf("parallelism %d: failed slot %d carries bounds", parallelism, i)
			}
		}
		data, err := json.Marshal(reports)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := run(1)
	for _, p := range []int{3, 8} {
		if got := run(p); string(got) != string(serial) {
			t.Fatalf("parallelism %d produced different batch output (error slots must be deterministic)", p)
		}
	}
}

// TestAnalyzeBatchCancellationFillsSlots: cancelling the batch fills every
// undispatched slot with the cancellation error, so consumers always get
// len(gs) well-formed reports.
func TestAnalyzeBatchCancellationFillsSlots(t *testing.T) {
	gen, err := hetrta.NewGenerator(hetrta.SmallTasks(20, 40), 5)
	if err != nil {
		t.Fatal(err)
	}
	var graphs []*hetrta.Graph
	for i := 0; i < 100; i++ {
		g, _, _, err := gen.HetTask(0.2)
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	an, err := hetrta.NewAnalyzer(
		hetrta.WithPlatform(hetrta.HeteroPlatform(2)),
		hetrta.WithParallelism(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before dispatch: no slot may complete
	reports, err := an.AnalyzeBatch(ctx, graphs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(reports) != len(graphs) {
		t.Fatalf("got %d report slots, want %d", len(reports), len(graphs))
	}
	for i, r := range reports {
		if r == nil {
			t.Fatalf("report %d is nil", i)
		}
		if r.Err == "" {
			t.Fatalf("report %d lacks the cancellation error", i)
		}
		if !strings.Contains(r.Err, context.Canceled.Error()) {
			t.Fatalf("report %d Err = %q, want it to record the cancellation", i, r.Err)
		}
	}
}
